package queue

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

func newHTTPQueue(t *testing.T, clock Clock) (*HTTPClient, *Service) {
	t.Helper()
	svc := NewService(Config{Clock: clock, Seed: 1})
	srv := httptest.NewServer(&HTTPHandler{Service: svc})
	t.Cleanup(srv.Close)
	return &HTTPClient{BaseURL: srv.URL}, svc
}

func TestHTTPSendReceiveDelete(t *testing.T) {
	c, _ := newHTTPQueue(t, nil)
	if err := c.CreateQueue("tasks"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateQueue("tasks"); err != nil {
		t.Fatalf("idempotent create: %v", err)
	}
	id, err := c.Send("tasks", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Error("empty id")
	}
	m, ok, err := c.Receive("tasks", time.Minute)
	if err != nil || !ok {
		t.Fatalf("receive: %v ok=%v", err, ok)
	}
	if string(m.Body) != "payload" {
		t.Errorf("body = %q", m.Body)
	}
	if err := c.Delete("tasks", m.ReceiptHandle); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Receive("tasks", time.Minute); ok {
		t.Error("deleted message redelivered")
	}
}

func TestHTTPEmptyReceiveIs204(t *testing.T) {
	c, _ := newHTTPQueue(t, nil)
	c.CreateQueue("empty")
	_, ok, err := c.Receive("empty", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("empty queue delivered a message")
	}
}

func TestHTTPVisibilityTimeoutOverWire(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	c, _ := newHTTPQueue(t, clock)
	c.CreateQueue("q")
	c.Send("q", []byte("task"))
	m1, ok, _ := c.Receive("q", 10*time.Second)
	if !ok {
		t.Fatal("first receive failed")
	}
	if _, ok, _ := c.Receive("q", 10*time.Second); ok {
		t.Fatal("message should be hidden")
	}
	clock.Advance(11 * time.Second)
	m2, ok, _ := c.Receive("q", 10*time.Second)
	if !ok {
		t.Fatal("message should reappear over HTTP too")
	}
	if m2.Receives != 2 {
		t.Errorf("receives = %d", m2.Receives)
	}
	// Stale handle → 409 → wraps ErrStaleReceipt.
	if err := c.Delete("q", m1.ReceiptHandle); !errors.Is(err, ErrStaleReceipt) {
		t.Errorf("stale delete: %v", err)
	}
}

func TestHTTPCountEndpoint(t *testing.T) {
	c, svc := newHTTPQueue(t, nil)
	c.CreateQueue("q")
	c.Send("q", []byte("a"))
	c.Send("q", []byte("b"))
	resp, err := http.Get(c.BaseURL + "/q/q/count")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count status = %d", resp.StatusCode)
	}
	v, f, _ := svc.ApproximateCount("q")
	if v != 2 || f != 0 {
		t.Errorf("counts = %d,%d", v, f)
	}
}

func TestHTTPChangeVisibility(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	c, _ := newHTTPQueue(t, clock)
	c.CreateQueue("q")
	c.Send("q", []byte("x"))
	m, _, _ := c.Receive("q", 5*time.Second)
	resp, err := http.Post(c.BaseURL+"/q/q/messages/"+url.PathEscape(m.ReceiptHandle)+"/visibility?d=1h", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("change visibility status = %d", resp.StatusCode)
	}
	clock.Advance(10 * time.Minute)
	if _, ok, _ := c.Receive("q", 0); ok {
		t.Error("extended message should stay hidden")
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	c, _ := newHTTPQueue(t, nil)
	if _, err := c.Send("missing", nil); err == nil {
		t.Error("send to missing queue should error")
	}
	if _, _, err := c.Receive("missing", 0); err == nil {
		t.Error("receive from missing queue should error")
	}
	resp, err := http.Get(c.BaseURL + "/q/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /q/ (list) = %d", resp.StatusCode)
	}
	// Bad visibility duration.
	c.CreateQueue("q")
	resp, err = http.Get(c.BaseURL + "/q/q/messages?visibility=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad visibility = %d", resp.StatusCode)
	}
}

func TestHTTPBatchRoundTrip(t *testing.T) {
	c, svc := newHTTPQueue(t, nil)
	if err := c.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	base := svc.APIRequestsFor("q")
	bodies := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	ids, err := c.SendBatch("q", bodies)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	msgs, err := c.ReceiveBatch("q", time.Minute, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("received %d, want 3", len(msgs))
	}
	receipts := make([]string, 0, len(msgs))
	seen := map[string]bool{}
	for _, m := range msgs {
		receipts = append(receipts, m.ReceiptHandle)
		seen[string(m.Body)] = true
	}
	if !seen["a"] || !seen["b"] || !seen["c"] {
		t.Errorf("bodies lost in transit: %v", seen)
	}
	results, err := c.DeleteBatch("q", append(receipts, "bogus"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if results[i] != nil {
			t.Errorf("delete %d: %v", i, results[i])
		}
	}
	if results[3] != ErrStaleReceipt {
		t.Errorf("bogus receipt: %v, want ErrStaleReceipt", results[3])
	}
	// Three batch calls = three billed requests, not seven.
	if got := svc.APIRequestsFor("q") - base; got != 3 {
		t.Errorf("batch round trip billed %d requests, want 3", got)
	}
	if msgs, err := c.ReceiveBatch("q", time.Minute, 10, 0); err != nil || len(msgs) != 0 {
		t.Errorf("queue not empty after batch delete: %d msgs, err=%v", len(msgs), err)
	}
}

func TestHTTPLongPollOverWire(t *testing.T) {
	c, svc := newHTTPQueue(t, nil)
	c.CreateQueue("q")
	done := make(chan struct{})
	go func() {
		defer close(done)
		m, ok, err := c.ReceiveWait("q", time.Minute, 5*time.Second)
		if err != nil || !ok {
			t.Errorf("long poll over HTTP: ok=%v err=%v", ok, err)
			return
		}
		if string(m.Body) != "late" {
			t.Errorf("body = %q", m.Body)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := svc.SendMessage("q", []byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("HTTP long poll never returned")
	}
}

func TestHTTPWorkerLoopEndToEnd(t *testing.T) {
	// A worker speaking only HTTP drains the queue — the paper's claim
	// that any HTTP-capable client can participate (e.g. local machines
	// augmenting cloud capacity).
	c, _ := newHTTPQueue(t, nil)
	c.CreateQueue("jobs")
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := c.Send("jobs", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for {
		m, ok, err := c.Receive("jobs", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen[m.ID] = true
		if err := c.Delete("jobs", m.ReceiptHandle); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != n {
		t.Errorf("drained %d messages, want %d", len(seen), n)
	}
}
