package queue

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestTransferInPreservesCount: a transferred message resumes its
// delivery count — the property queue migration needs so MaxReceives
// poison detection does not lose progress when a queue moves.
func TestTransferInPreservesCount(t *testing.T) {
	s := NewService(Config{Seed: 1})
	if err := s.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TransferIn("q", []byte("moved"), 3); err != nil {
		t.Fatal(err)
	}
	m, ok, err := s.ReceiveMessage("q", time.Minute)
	if err != nil || !ok {
		t.Fatalf("receive transferred message: ok=%v err=%v", ok, err)
	}
	if m.Receives != 4 {
		t.Errorf("Receives = %d, want 4 (3 prior deliveries + this one)", m.Receives)
	}
	if string(m.Body) != "moved" {
		t.Errorf("Body = %q", m.Body)
	}
	// The resumed count keeps advancing: release and redeliver.
	if err := s.ChangeVisibility("q", m.ReceiptHandle, 0); err != nil {
		t.Fatal(err)
	}
	m, ok, err = s.ReceiveMessage("q", time.Minute)
	if err != nil || !ok || m.Receives != 5 {
		t.Fatalf("redelivery after transfer: ok=%v err=%v receives=%d, want 5", ok, err, m.Receives)
	}
}

// TestTransferInZeroReceives: receives=0 is an ordinary fresh send.
func TestTransferInZeroReceives(t *testing.T) {
	s := NewService(Config{Seed: 1})
	if err := s.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TransferIn("q", []byte("fresh"), 0); err != nil {
		t.Fatal(err)
	}
	m, ok, err := s.ReceiveMessage("q", time.Minute)
	if err != nil || !ok || m.Receives != 1 {
		t.Fatalf("ok=%v err=%v receives=%d, want 1", ok, err, m.Receives)
	}
}

// TestTransferInValidation: malformed transfers are rejected before
// anything is billed or enqueued.
func TestTransferInValidation(t *testing.T) {
	s := NewService(Config{Seed: 1})
	if err := s.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	base := s.APIRequestsFor("q")
	if _, err := s.TransferIn("q", []byte("x"), -1); !errors.Is(err, ErrBadTransfer) {
		t.Errorf("negative receives: %v, want ErrBadTransfer", err)
	}
	if _, err := s.TransferInBatch("q", nil); !errors.Is(err, ErrBatchSize) {
		t.Errorf("empty batch: %v, want ErrBatchSize", err)
	}
	big := make([]TransferItem, MaxBatch+1)
	if _, err := s.TransferInBatch("q", big); !errors.Is(err, ErrBatchSize) {
		t.Errorf("oversized batch: %v, want ErrBatchSize", err)
	}
	// One bad item rejects the whole batch: no partial enqueue.
	mixed := []TransferItem{{Body: []byte("a"), Receives: 1}, {Body: []byte("b"), Receives: -2}}
	if _, err := s.TransferInBatch("q", mixed); !errors.Is(err, ErrBadTransfer) {
		t.Errorf("mixed batch: %v, want ErrBadTransfer", err)
	}
	if v, inf, _ := s.ApproximateCount("q"); v != 0 || inf != 0 {
		t.Errorf("rejected batch enqueued a prefix: %d visible, %d in flight", v, inf)
	}
	// ApproximateCount billed one request; none of the rejects did.
	if got := s.APIRequestsFor("q") - base; got != 1 {
		t.Errorf("rejected transfers billed %d extra requests, want 0", got-1)
	}
	if _, err := s.TransferIn("ghost", []byte("x"), 1); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("unknown queue: %v, want ErrNoSuchQueue", err)
	}
}

// TestTransferInBatchBilling: a transfer batch bills the destination
// queue exactly one request, like every other batch call.
func TestTransferInBatchBilling(t *testing.T) {
	s := NewService(Config{Seed: 1})
	if err := s.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	base := s.APIRequestsFor("q")
	items := make([]TransferItem, MaxBatch)
	for i := range items {
		items[i] = TransferItem{Body: []byte(fmt.Sprintf("m%d", i)), Receives: i}
	}
	ids, err := s.TransferInBatch("q", items)
	if err != nil || len(ids) != MaxBatch {
		t.Fatalf("batch transfer: ids=%d err=%v", len(ids), err)
	}
	if got := s.APIRequestsFor("q") - base; got != 1 {
		t.Errorf("batch transfer billed %d requests, want exactly 1", got)
	}
	if v, _, _ := s.ApproximateCount("q"); v != MaxBatch {
		t.Errorf("visible = %d, want %d", v, MaxBatch)
	}
}
