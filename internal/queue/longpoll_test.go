package queue

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Long polling
// ---------------------------------------------------------------------------

func TestLongPollWakesOnSend(t *testing.T) {
	s := newTestService(nil)
	s.CreateQueue("q")
	type result struct {
		m  Message
		ok bool
	}
	got := make(chan result, 1)
	go func() {
		m, ok, err := s.ReceiveMessageWait("q", time.Minute, 10*time.Second)
		if err != nil {
			t.Error(err)
		}
		got <- result{m, ok}
	}()
	time.Sleep(20 * time.Millisecond) // let the poller block
	start := time.Now()
	if _, err := s.SendMessage("q", []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if !r.ok {
			t.Fatal("long poll returned empty despite a send")
		}
		if string(r.m.Body) != "wake" {
			t.Errorf("body = %q", r.m.Body)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("wakeup took %v; long poll is sleeping, not waiting", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never woke on send")
	}
}

func TestLongPollWakesOnVisibilityExpiry(t *testing.T) {
	// Real clock: a receiver long-polling an empty-but-for-in-flight
	// queue must wake when the in-flight lease expires, without a send.
	s := newTestService(nil)
	s.CreateQueue("q")
	s.SendMessage("q", []byte("task"))
	if _, ok, _ := s.ReceiveMessage("q", 50*time.Millisecond); !ok {
		t.Fatal("initial receive failed")
	}
	m, ok, err := s.ReceiveMessageWait("q", time.Minute, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("long poll across expiry: ok=%v err=%v", ok, err)
	}
	if m.Receives != 2 {
		t.Errorf("receives = %d, want 2", m.Receives)
	}
}

func TestLongPollWakesOnFakeClockAdvance(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	s := newTestService(clock)
	s.CreateQueue("q")
	s.SendMessage("q", []byte("task"))
	if _, ok, _ := s.ReceiveMessage("q", 10*time.Second); !ok {
		t.Fatal("initial receive failed")
	}
	type result struct {
		m  Message
		ok bool
	}
	got := make(chan result, 1)
	go func() {
		m, ok, err := s.ReceiveMessageWait("q", 10*time.Second, time.Hour)
		if err != nil {
			t.Error(err)
		}
		got <- result{m, ok}
	}()
	time.Sleep(20 * time.Millisecond) // let the poller block
	clock.Advance(11 * time.Second)   // past the visibility timeout
	select {
	case r := <-got:
		if !r.ok {
			t.Fatal("advance past expiry delivered nothing")
		}
		if r.m.Receives != 2 {
			t.Errorf("receives = %d, want 2", r.m.Receives)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never woke on FakeClock advance")
	}
}

func TestLongPollTimesOutEmpty(t *testing.T) {
	s := newTestService(nil)
	s.CreateQueue("q")
	start := time.Now()
	_, ok, err := s.ReceiveMessageWait("q", time.Minute, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("empty queue delivered a message")
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("returned after %v, want ≥ the 30ms wait", d)
	}
}

func TestLongPollDeletedQueueUnblocks(t *testing.T) {
	s := newTestService(nil)
	s.CreateQueue("q")
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.ReceiveMessageWait("q", time.Minute, time.Hour)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := s.DeleteQueue("q"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrNoSuchQueue) {
			t.Errorf("err = %v, want ErrNoSuchQueue", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver stayed blocked on a deleted queue")
	}
}

// ---------------------------------------------------------------------------
// Batch APIs
// ---------------------------------------------------------------------------

func TestBatchSendReceiveDeleteBilledOnce(t *testing.T) {
	s := newTestService(nil)
	s.CreateQueue("q")
	base := s.APIRequestsFor("q") // 1: the create
	bodies := make([][]byte, 10)
	for i := range bodies {
		bodies[i] = []byte{byte(i)}
	}
	ids, err := s.SendMessageBatch("q", bodies)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("ids = %d, want 10", len(ids))
	}
	msgs, err := s.ReceiveMessageBatch("q", time.Minute, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 10 {
		t.Fatalf("received %d, want 10", len(msgs))
	}
	// All ten are now in flight under distinct receipts.
	seen := map[string]bool{}
	receipts := make([]string, 0, len(msgs))
	for _, m := range msgs {
		if seen[m.ID] {
			t.Errorf("message %s delivered twice in one batch", m.ID)
		}
		seen[m.ID] = true
		receipts = append(receipts, m.ReceiptHandle)
	}
	if v, f, _ := s.ApproximateCount("q"); v != 0 || f != 10 {
		t.Errorf("counts = %d,%d; want 0,10", v, f)
	}
	results, err := s.DeleteMessageBatch("q", receipts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("delete %d: %v", i, r)
		}
	}
	if v, f, _ := s.ApproximateCount("q"); v+f != 0 {
		t.Errorf("queue not empty after batch delete: %d,%d", v, f)
	}
	// send batch + receive batch + delete batch + 2 counts = 5 requests,
	// not 30+: batches bill once.
	if got := s.APIRequestsFor("q") - base; got != 5 {
		t.Errorf("API requests for 10-message batch round trip = %d, want 5", got)
	}
}

func TestBatchSizeLimits(t *testing.T) {
	s := newTestService(nil)
	s.CreateQueue("q")
	if _, err := s.SendMessageBatch("q", nil); !errors.Is(err, ErrBatchSize) {
		t.Errorf("empty send batch: %v", err)
	}
	if _, err := s.SendMessageBatch("q", make([][]byte, MaxBatch+1)); !errors.Is(err, ErrBatchSize) {
		t.Errorf("oversized send batch: %v", err)
	}
	if _, err := s.ReceiveMessageBatch("q", 0, 0, 0); !errors.Is(err, ErrBatchSize) {
		t.Errorf("zero receive batch: %v", err)
	}
	if _, err := s.ReceiveMessageBatch("q", 0, MaxBatch+1, 0); !errors.Is(err, ErrBatchSize) {
		t.Errorf("oversized receive batch: %v", err)
	}
	if _, err := s.DeleteMessageBatch("q", nil); !errors.Is(err, ErrBatchSize) {
		t.Errorf("empty delete batch: %v", err)
	}
	if _, err := s.SendMessageBatch("missing", [][]byte{[]byte("x")}); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("send batch to missing queue: %v", err)
	}
}

func TestBatchDeletePartialFailure(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	s := newTestService(clock)
	s.CreateQueue("q")
	s.SendMessage("q", []byte("a"))
	s.SendMessage("q", []byte("b"))
	msgs, err := s.ReceiveMessageBatch("q", 10*time.Second, 2, 0)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("receive batch: %d msgs err=%v", len(msgs), err)
	}
	// Let the first lease expire and redeliver it: its receipt is stale.
	clock.Advance(11 * time.Second)
	m2, ok, _ := s.ReceiveMessage("q", time.Hour)
	if !ok {
		t.Fatal("expired message not redelivered")
	}
	var stale string
	for _, m := range msgs {
		if m.ID == m2.ID {
			stale = m.ReceiptHandle
		}
	}
	fresh := msgs[0].ReceiptHandle
	if msgs[0].ID == m2.ID {
		fresh = msgs[1].ReceiptHandle
	}
	results, err := s.DeleteMessageBatch("q", []string{stale, fresh, m2.ReceiptHandle})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0], ErrStaleReceipt) {
		t.Errorf("stale entry: %v, want ErrStaleReceipt", results[0])
	}
	if results[1] != nil || results[2] != nil {
		t.Errorf("fresh entries: %v, %v", results[1], results[2])
	}
	if v, f, _ := s.ApproximateCount("q"); v+f != 0 {
		t.Errorf("queue holds %d after partial batch delete, want 0", v+f)
	}
}

func TestReceiveBatchVisibilityAndReceipts(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	s := newTestService(clock)
	s.CreateQueue("q")
	for i := 0; i < 6; i++ {
		s.SendMessage("q", []byte{byte(i)})
	}
	first, err := s.ReceiveMessageBatch("q", 30*time.Second, 4, 0)
	if err != nil || len(first) != 4 {
		t.Fatalf("first batch: %d err=%v", len(first), err)
	}
	second, err := s.ReceiveMessageBatch("q", 30*time.Second, 4, 0)
	if err != nil || len(second) != 2 {
		t.Fatalf("second batch got %d, want the 2 remaining", len(second))
	}
	// After expiry all six come back, each bearing a fresh receipt; the
	// old receipts are rejected.
	clock.Advance(31 * time.Second)
	redelivered := map[string]string{}
	for len(redelivered) < 6 {
		m, ok, err := s.ReceiveMessage("q", time.Hour)
		if err != nil || !ok {
			t.Fatalf("redelivery stalled at %d: ok=%v err=%v", len(redelivered), ok, err)
		}
		redelivered[m.ID] = m.ReceiptHandle
	}
	for _, m := range append(first, second...) {
		if err := s.DeleteMessage("q", m.ReceiptHandle); !errors.Is(err, ErrStaleReceipt) {
			t.Errorf("stale batch receipt for %s accepted: %v", m.ID, err)
		}
		if err := s.DeleteMessage("q", redelivered[m.ID]); err != nil {
			t.Errorf("fresh receipt for %s rejected: %v", m.ID, err)
		}
	}
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

func TestDeleteCompactsAllIndexes(t *testing.T) {
	s := newTestService(nil)
	s.CreateQueue("q")
	const n = 500
	for i := 0; i < n; i++ {
		s.SendMessage("q", []byte{byte(i)})
	}
	for i := 0; i < n; i++ {
		m, ok, err := s.ReceiveMessage("q", time.Hour)
		if err != nil || !ok {
			t.Fatalf("receive %d: ok=%v err=%v", i, ok, err)
		}
		if err := s.DeleteMessage("q", m.ReceiptHandle); err != nil {
			t.Fatal(err)
		}
	}
	v, f, r, err := s.storeSizes("q")
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 || f != 0 || r != 0 {
		t.Errorf("indexes after deleting everything = visible %d, inflight %d, receipts %d; want 0,0,0", v, f, r)
	}
	// Counts and billing stay exact after heavy churn.
	if vis, inf, _ := s.ApproximateCount("q"); vis != 0 || inf != 0 {
		t.Errorf("ApproximateCount = %d,%d after compaction", vis, inf)
	}
	s.SendMessage("q", []byte("fresh"))
	if vis, _, _ := s.ApproximateCount("q"); vis != 1 {
		t.Errorf("fresh message invisible after compaction: visible=%d", vis)
	}
	// create + n sends + n receives + n deletes + 2 counts + 1 send.
	if got := s.APIRequestsFor("q"); got != int64(1+3*n+2+1) {
		t.Errorf("APIRequestsFor = %d, want %d", got, 1+3*n+2+1)
	}
}

// ---------------------------------------------------------------------------
// Body aliasing contract
// ---------------------------------------------------------------------------

func TestReceiveHandsOutStoredBodyWithoutCopy(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	s := newTestService(clock)
	s.CreateQueue("q")
	sent := []byte("original")
	s.SendMessage("q", sent)
	// The send-side defensive copy still protects the store from the
	// sender mutating its buffer afterwards.
	sent[0] = 'X'
	m1, _, _ := s.ReceiveMessage("q", 10*time.Second)
	if string(m1.Body) != "original" {
		t.Fatalf("stored body = %q; send-side copy lost", m1.Body)
	}
	clock.Advance(11 * time.Second)
	m2, ok, _ := s.ReceiveMessage("q", 10*time.Second)
	if !ok {
		t.Fatal("redelivery failed")
	}
	// Both deliveries alias the single stored copy: no per-receive copy.
	if &m1.Body[0] != &m2.Body[0] {
		t.Error("redelivery returned a fresh copy; receive path should hand out the stored slice")
	}
}

// ---------------------------------------------------------------------------
// Concurrency: many queues, all operations, run with -race
// ---------------------------------------------------------------------------

func TestConcurrentQueuesAllOps(t *testing.T) {
	s := NewService(Config{Seed: 9, DefaultVisibility: 50 * time.Millisecond})
	const queues = 8
	const perQueue = 120
	var wg sync.WaitGroup
	for qi := 0; qi < queues; qi++ {
		name := fmt.Sprintf("q%d", qi)
		if err := s.CreateQueue(name); err != nil {
			t.Fatal(err)
		}
		wg.Add(3)
		// Producer: mixed single and batch sends.
		go func(name string) {
			defer wg.Done()
			for i := 0; i < perQueue; i += 4 {
				if _, err := s.SendMessageBatch(name, [][]byte{{1}, {2}, {3}, {4}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(name)
		// Consumer: long-poll batches, renew one lease, delete the rest.
		go func(name string) {
			defer wg.Done()
			drained := 0
			for drained < perQueue {
				msgs, err := s.ReceiveMessageBatch(name, time.Minute, 8, 20*time.Millisecond)
				if err != nil {
					t.Error(err)
					return
				}
				for i, m := range msgs {
					if i == 0 {
						if err := s.ChangeVisibility(name, m.ReceiptHandle, time.Minute); err != nil {
							t.Error(err)
							return
						}
					}
					if err := s.DeleteMessage(name, m.ReceiptHandle); err != nil {
						t.Error(err)
						return
					}
				}
				drained += len(msgs)
			}
		}(name)
		// Observer: counts and billing reads race with the traffic.
		go func(name string) {
			defer wg.Done()
			for i := 0; i < perQueue/4; i++ {
				if _, _, err := s.ApproximateCount(name); err != nil {
					t.Error(err)
					return
				}
				s.APIRequestsFor(name)
				s.APIRequests()
			}
		}(name)
	}
	wg.Wait()
	for qi := 0; qi < queues; qi++ {
		name := fmt.Sprintf("q%d", qi)
		if v, f, _ := s.ApproximateCount(name); v+f != 0 {
			t.Errorf("%s holds %d messages after drain", name, v+f)
		}
	}
}

func TestCreateQueueEmptyNameNotBilled(t *testing.T) {
	s := newTestService(nil)
	base := s.APIRequests()
	if err := s.CreateQueue(""); !errors.Is(err, ErrEmptyQueueName) {
		t.Fatalf("empty create: %v", err)
	}
	if got := s.APIRequests() - base; got != 0 {
		t.Errorf("rejected create billed %d requests, want 0", got)
	}
	if got := s.APIRequestsFor(""); got != 0 {
		t.Errorf(`apiByQueue[""] = %d, want no such entry`, got)
	}
}
