package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/queue"
)

// AddShard registers a backend — a local *queue.Service or a remote
// *queue.HTTPClient — under id and rebalances: every queue whose ring
// owner changed (≈1/(N+1) of them, all onto the new shard) is migrated
// by drain-and-forward before AddShard returns. Straggler forwarding
// for messages in flight on the old owners continues in the background.
func (r *Router) AddShard(id string, backend queue.API) error {
	if id == "" || strings.Contains(id, receiptSep) {
		return ErrBadShardID
	}
	if backend == nil {
		return fmt.Errorf("shard: nil backend for %q", id)
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	r.mu.Lock()
	if _, ok := r.shards[id]; ok {
		// Ids are not reusable while a retired shard may still hold
		// straggler leases under the same name.
		r.mu.Unlock()
		return ErrShardExists
	}
	r.ring.add(id)
	r.shards[id] = backend
	moves := r.pendingMovesLocked()
	r.mu.Unlock()
	return r.runMoves(moves)
}

// RemoveShard takes a shard off the ring and migrates its queues to
// their new ring owners. The backend stays registered (retired) so
// receipts it issued keep resolving and forwarders can move its
// remaining in-flight messages as their leases expire.
func (r *Router) RemoveShard(id string) error {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	r.mu.Lock()
	if !r.ring.ids[id] {
		r.mu.Unlock()
		return ErrNoSuchShard
	}
	if len(r.ring.ids) == 1 && len(r.routes) > 0 {
		r.mu.Unlock()
		return fmt.Errorf("shard: cannot remove last shard %q while it holds queues: %w", id, ErrNoShards)
	}
	r.ring.remove(id)
	moves := r.pendingMovesLocked()
	r.mu.Unlock()
	return r.runMoves(moves)
}

// pendingMove is one queue whose route disagrees with the ring.
type pendingMove struct {
	name     string
	rt       *route
	from, to string
}

// pendingMovesLocked lists the queues whose current owner is no longer
// their ring owner — computed over each queue's placement-group key,
// so a whole group's queues move together. Caller holds r.mu.
func (r *Router) pendingMovesLocked() []pendingMove {
	var moves []pendingMove
	for name, rt := range r.routes {
		rt.mu.Lock()
		cur, group := rt.shard, rt.group
		rt.mu.Unlock()
		owner, ok := r.ringOwnerLocked(group, name)
		if !ok {
			continue
		}
		if owner != cur {
			moves = append(moves, pendingMove{name: name, rt: rt, from: cur, to: owner})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].name < moves[j].name })
	return moves
}

// runMoves migrates each queue in turn, attempting every move even
// when one fails — aborting on the first error would leave the rest of
// the namespace diverged from the already-updated ring with no record
// of which queues were skipped. Failed moves stay routed to their old
// shard (fully usable) and converge on the next Rebalance. Caller
// holds topoMu.
func (r *Router) runMoves(moves []pendingMove) error {
	var errs []error
	for _, m := range moves {
		if err := r.migrate(m); err != nil {
			errs = append(errs, fmt.Errorf("shard: migrating %s from %s to %s: %w", m.name, m.from, m.to, err))
		}
	}
	return errors.Join(errs...)
}

// Rebalance re-runs every migration the current ring implies —
// queues whose route disagrees with their ring owner, e.g. after an
// AddShard whose drain hit a transient error. It is idempotent: with
// nothing pending it does nothing and returns nil.
func (r *Router) Rebalance() error {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	r.mu.Lock()
	moves := r.pendingMovesLocked()
	r.mu.Unlock()
	return r.runMoves(moves)
}

// SplitGroup re-derives a placement group's queues across k sub-arcs:
// each queue is deterministically assigned one sub-arc by hashing its
// name (subgroupIndex), and sub-arc i lives on the i-th distinct ring
// successor of the group's hash, so a hot group's traffic spreads over
// min(k, shards) shards while every individual queue — and its
// receipts and in-flight messages — stays on exactly one shard. Queues
// whose sub-arc lands them elsewhere migrate through the same
// count-preserving drain-and-forward machinery topology changes use.
// k = 1 merges the group back onto its single arc (the hysteresis
// path). Idempotent: re-splitting at the current k re-runs only the
// migrations that previously failed, like Rebalance.
func (r *Router) SplitGroup(group string, k int) error {
	if group == "" || strings.Contains(group, groupSep) {
		return fmt.Errorf("%w: %q", ErrBadGroup, group)
	}
	if k < 1 || k > maxSubgroups {
		return fmt.Errorf("%w: %d", ErrBadSplit, k)
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	r.mu.Lock()
	if k > 1 && r.pinned[group] {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrGroupPinned, group)
	}
	if k <= 1 {
		delete(r.splits, group)
	} else {
		r.splits[group] = k
	}
	moves := r.pendingMovesLocked()
	r.mu.Unlock()
	return r.runMoves(moves)
}

// MergeGroup collapses a split group back onto its single ring arc,
// migrating its queues home. A no-op (and nil) for an unsplit group.
func (r *Router) MergeGroup(group string) error { return r.SplitGroup(group, 1) }

// PinGroup opts a group out of (or back into) hot-group splitting.
// Pinning an already-split group merges it first: a job that needs
// strict co-location needs it NOW, not at the next policy tick.
func (r *Router) PinGroup(group string, pin bool) error {
	if group == "" || strings.Contains(group, groupSep) {
		return fmt.Errorf("%w: %q", ErrBadGroup, group)
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	r.mu.Lock()
	if pin {
		r.pinned[group] = true
		delete(r.splits, group)
	} else {
		delete(r.pinned, group)
	}
	moves := r.pendingMovesLocked()
	r.mu.Unlock()
	return r.runMoves(moves)
}

// Regroup assigns a queue to an explicit placement group and migrates
// it onto the group's ring owner through the same drain-and-forward
// machinery topology changes use — the migration story for namespaces
// created before placement groups existed: an operator regroups a
// job's queues one by one and their traffic converges onto one shard.
// An empty group reverts to the name-derived key.
//
// Regroup serializes with Rebalance and topology changes on topoMu
// (and, underneath, on the per-route freeze), so racing a Regroup
// against a concurrent Rebalance of the same queue is safe: whichever
// runs second simply re-evaluates the route and the placement
// converges on the last group set. Neither call errors on the race.
func (r *Router) Regroup(queueName, group string) error {
	if strings.Contains(group, groupSep) {
		// "job-7/tasks" as a group would hash the literal string while
		// sibling queues hash "job-7" — reject instead of silently
		// placing the queue away from the group it was meant to join.
		return fmt.Errorf("%w: %q", ErrBadGroup, group)
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	r.mu.Lock()
	rt := r.routes[queueName]
	if rt == nil {
		r.mu.Unlock()
		return queue.ErrNoSuchQueue
	}
	rt.mu.Lock()
	if rt.dead {
		rt.mu.Unlock()
		r.mu.Unlock()
		return queue.ErrNoSuchQueue
	}
	rt.group = group
	cur := rt.shard
	rt.mu.Unlock()
	owner, ok := r.ringOwnerLocked(group, queueName)
	r.mu.Unlock()
	if !ok {
		return ErrNoShards
	}
	if owner == cur {
		return nil
	}
	return r.migrate(pendingMove{name: queueName, rt: rt, from: cur, to: owner})
}

// RegroupPrefix assigns every queue whose name starts with prefix to
// the placement group in one topology-serialized sweep, then migrates
// the queues whose new group key lands them on a different ring owner.
// It is the bulk form of Regroup: one topoMu hold covers the whole
// sweep, so no Rebalance or topology change can interleave between two
// of the prefix's queues and observe the group half-applied. Returns
// how many queues matched the prefix; migrations that fail leave their
// queue routed to its old shard (fully usable, converging on the next
// Rebalance), with the errors joined.
//
// The prefix must be non-empty: regrouping the entire namespace is
// almost certainly an operator mistyping, and an explicit per-queue
// Regroup loop is the honest way to spell it.
//
// An empty group reverts matched queues to their name-derived keys.
func (r *Router) RegroupPrefix(prefix, group string) (int, error) {
	if prefix == "" {
		return 0, errors.New("shard: regroup prefix must be non-empty")
	}
	if strings.Contains(group, groupSep) {
		return 0, fmt.Errorf("%w: %q", ErrBadGroup, group)
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	matched := 0
	var moves []pendingMove
	r.mu.Lock()
	for name, rt := range r.routes {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rt.mu.Lock()
		if rt.dead {
			rt.mu.Unlock()
			continue
		}
		rt.group = group
		cur := rt.shard
		rt.mu.Unlock()
		matched++
		owner, ok := r.ringOwnerLocked(group, name)
		if !ok {
			// Unreachable while routes exist (the last owning shard
			// cannot be removed), but don't migrate on a broken ring.
			continue
		}
		if owner != cur {
			moves = append(moves, pendingMove{name: name, rt: rt, from: cur, to: owner})
		}
	}
	r.mu.Unlock()
	sort.Slice(moves, func(i, j int) bool { return moves[i].name < moves[j].name })
	return matched, r.runMoves(moves)
}

// migrate moves one queue: freeze, stream the visible backlog to the
// new owner, switch the route, thaw, and leave a forwarder watching the
// old shard for in-flight messages that expire back into visibility.
// On error the route is left on the old shard and the queue stays
// usable — at worst some already-streamed messages are redelivered from
// the new owner later, within the at-least-once contract.
func (r *Router) migrate(m pendingMove) error {
	r.mu.RLock()
	fromB, toB := r.shards[m.from], r.shards[m.to]
	r.mu.RUnlock()
	if fromB == nil || toB == nil {
		return ErrNoSuchShard
	}

	// Freeze: new operations on the queue block until the thaw. An
	// existing freeze (CreateQueue publishing the route) is waited out
	// first — overwriting its channel would strand its waiters.
	var frozen chan struct{}
	for {
		m.rt.mu.Lock()
		if m.rt.shard != m.from || m.rt.dead {
			// Re-routed or deleted since the move was computed; nothing
			// to do. The dead check matters: streaming a deleted
			// queue's messages would plant a ghost copy on the new
			// owner.
			m.rt.mu.Unlock()
			return nil
		}
		if m.rt.frozen == nil {
			frozen = make(chan struct{})
			m.rt.frozen = frozen
			m.rt.mu.Unlock()
			break
		}
		ch := m.rt.frozen
		m.rt.mu.Unlock()
		<-ch
	}

	// abort thaws with the route unchanged. Batches already streamed to
	// the new owner would otherwise sit there invisibly (the route
	// still points at the old shard, and nothing revisits them until
	// the next topology change) — so a forwarder is left watching the
	// new owner to carry them back to wherever the route points.
	streamed := false
	abort := func() {
		m.rt.mu.Lock()
		spawnBack := streamed && !m.rt.draining[m.to]
		if spawnBack {
			m.rt.draining[m.to] = true
		}
		close(frozen)
		m.rt.frozen = nil
		m.rt.mu.Unlock()
		if spawnBack {
			r.fwd.Add(1)
			go r.forward(m.name, m.rt, m.to, toB)
		}
	}

	if err := toB.CreateQueue(m.name); err != nil && !errors.Is(err, queue.ErrQueueExists) {
		abort()
		return err
	}

	// Stream the visible backlog. Receivers that raced the freeze hold
	// leases on the old shard; those messages are not visible and are
	// handled by their receipts or the forwarder.
	for {
		msgs, err := fromB.ReceiveMessageBatch(m.name, r.cfg.DrainVisibility, queue.MaxBatch, 0)
		if errors.Is(err, queue.ErrNoSuchQueue) {
			// Deleted under the freeze (DeleteQueue waits, but the queue
			// may have been gone before the move started).
			break
		}
		if err != nil {
			abort()
			return err
		}
		if len(msgs) == 0 {
			break
		}
		receipts := make([]string, len(msgs))
		for i, msg := range msgs {
			receipts[i] = msg.ReceiptHandle
		}
		// Transfer before delete: a failure between the two redelivers
		// from the old shard instead of losing messages.
		if err := transferBatch(toB, m.name, msgs); err != nil {
			abort()
			return err
		}
		streamed = true
		if _, err := fromB.DeleteMessageBatch(m.name, receipts); err != nil && !errors.Is(err, queue.ErrNoSuchQueue) {
			abort()
			return err
		}
	}

	// Switch the route and thaw; stragglers drain in the background.
	// A forwarder may already be watching m.from (the queue moved off
	// it, back on, and off again before the first forwarder finished);
	// spawn a second one only if there isn't one.
	m.rt.mu.Lock()
	m.rt.shard = m.to
	alreadyForwarding := m.rt.draining[m.from]
	m.rt.draining[m.from] = true
	close(frozen)
	m.rt.frozen = nil
	m.rt.mu.Unlock()

	if !alreadyForwarding {
		r.fwd.Add(1)
		go r.forward(m.name, m.rt, m.from, fromB)
	}
	return nil
}

// forward watches a queue's old shard after migration. Messages the
// drain could not take — in flight, leased to live consumers — either
// get deleted through their (shard-routed) receipts or expire back to
// visible, in which case they are forwarded to the current owner. When
// the old queue is empty it is deleted; at the lease horizon the
// forwarder gives up and leaves it, so outstanding receipts stay valid.
//
// Idle polls back off exponentially from ForwardInterval to a quarter
// of DrainVisibility: every poll is a billed request (a real HTTP round
// trip on a remote shard), and consumers holding long heartbeat-renewed
// leases would otherwise draw a constant poll stream for the whole
// lease.
func (r *Router) forward(name string, rt *route, from string, fromB queue.API) {
	defer r.fwd.Done()
	// migratedBack records why the forwarder exits. When the queue
	// moved back onto `from` and then off again before this exit ran,
	// the new migration saw draining[from] set and refrained from
	// spawning a twin — so instead of dropping the entry (stranding
	// whatever is leased on `from`), hand the watch to a fresh
	// forwarder.
	migratedBack := false
	defer func() {
		rt.mu.Lock()
		if migratedBack && rt.shard != from {
			rt.mu.Unlock()
			r.fwd.Add(1) // before Done (deferred earlier, runs later)
			go r.forward(name, rt, from, fromB)
			return
		}
		delete(rt.draining, from)
		rt.mu.Unlock()
	}()
	deadline := time.Now().Add(r.cfg.LeaseHorizon)
	interval := r.cfg.ForwardInterval
	maxInterval := r.cfg.DrainVisibility / 4
	if maxInterval < interval {
		maxInterval = interval
	}
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
		case <-r.closing:
			return
		}
		// If the queue migrated back onto the shard being watched, the
		// "old" copy IS the live queue: stop without touching it.
		rt.mu.Lock()
		owner := rt.shard
		rt.mu.Unlock()
		if owner == from {
			migratedBack = true
			return
		}
		visible, inflight, err := fromB.ApproximateCount(name)
		if errors.Is(err, queue.ErrNoSuchQueue) {
			return // queue gone — deleted or already cleaned up
		}
		if err != nil {
			// Transient failure (a remote shard hiccup): back off and
			// keep watching — exiting here would strand whatever is
			// still leased on the old shard.
			if interval *= 2; interval > maxInterval {
				interval = maxInterval
			}
			if time.Now().After(deadline) {
				return
			}
			timer.Reset(interval)
			continue
		}
		if visible > 0 {
			r.forwardVisible(name, fromB)
			interval = r.cfg.ForwardInterval // progress: poll eagerly again
			timer.Reset(interval)
			continue // re-check counts before deciding to stop
		}
		if interval *= 2; interval > maxInterval {
			interval = maxInterval
		}
		if inflight == 0 {
			// Delete under topoMu so no migration can land the queue
			// back on this shard between the emptiness check and the
			// delete; both are re-verified once topology is pinned.
			r.topoMu.Lock()
			rt.mu.Lock()
			owner = rt.shard
			rt.mu.Unlock()
			stop := false
			if owner == from {
				stop = true // live again; leave it alone
				migratedBack = true
			} else if v, inf, cerr := fromB.ApproximateCount(name); errors.Is(cerr, queue.ErrNoSuchQueue) {
				stop = true // already gone
			} else if cerr == nil && v == 0 && inf == 0 {
				_ = fromB.DeleteQueue(name)
				stop = true
			}
			// A transient count error falls through: keep watching.
			r.topoMu.Unlock()
			if stop {
				return
			}
			// Refilled while unguarded; keep forwarding eagerly.
			interval = r.cfg.ForwardInterval
			timer.Reset(interval)
			continue
		}
		if time.Now().After(deadline) {
			return
		}
		timer.Reset(interval)
	}
}

// forwardVisible moves one round of expired stragglers from the old
// shard to the queue's current owner (resolved per batch, so chained
// migrations land messages on the newest owner).
func (r *Router) forwardVisible(name string, fromB queue.API) {
	for {
		msgs, err := fromB.ReceiveMessageBatch(name, r.cfg.DrainVisibility, queue.MaxBatch, 0)
		if err != nil || len(msgs) == 0 {
			return
		}
		receipts := make([]string, len(msgs))
		for i, msg := range msgs {
			receipts[i] = msg.ReceiptHandle
		}
		_, ownerB, err := r.ownerBackend("", name)
		if err != nil {
			return // queue deleted while forwarding
		}
		if err := transferBatch(ownerB, name, msgs); err != nil {
			return
		}
		_, _ = fromB.DeleteMessageBatch(name, receipts)
	}
}

// transferBatch moves one received batch onto dst, preserving each
// message's delivery count through the privileged transfer surface:
// the receive that pulled the batch off the source shard is router
// plumbing, not a consumer delivery, so the count carried over is
// Receives-1. (Only the receive of THIS attempt can be discounted: if
// the transfer fails and the source redelivers, the failed attempt's
// receive stays in the count — at most one budget unit per failed
// attempt, erring toward earlier dead-lettering; see the package doc.)
// When dst cannot take transfers — a foreign queue.API implementation,
// or a remote shard whose admin token is not provisioned — it falls
// back to a public re-send, which keeps the migration safe but
// restarts counts (the pre-transfer behaviour).
func transferBatch(dst queue.API, name string, msgs []queue.Message) error {
	if tr, ok := dst.(queue.Transferrer); ok {
		items := make([]queue.TransferItem, len(msgs))
		for i, msg := range msgs {
			items[i] = queue.TransferItem{Body: msg.Body, Receives: msg.Receives - 1}
		}
		_, err := tr.TransferInBatch(name, items)
		if err == nil || !errors.Is(err, queue.ErrNotPrivileged) {
			return err
		}
	}
	bodies := make([][]byte, len(msgs))
	for i, msg := range msgs {
		bodies[i] = msg.Body
	}
	_, err := dst.SendMessageBatch(name, bodies)
	return err
}
