// Unit tests for the load-aware policy. Decide is a pure function of
// one observation, so every branch — split doubling, merge hysteresis,
// scored fleet sizing, cooldowns, weight nudging — is checkable without
// running a fleet; the Autoscaler lifecycle test then drives the real
// runner against a live router with deterministic ticks.
package shard

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/queue"
)

var policyNow = time.Unix(1_700_000_000, 0)

func loadShards(rates ...float64) []ShardLoad {
	out := make([]ShardLoad, len(rates))
	for i, rate := range rates {
		out[i] = ShardLoad{ID: fmt.Sprintf("s%d", i), RatePerSec: rate, Weight: 1}
	}
	return out
}

func TestDecideSplitDoubling(t *testing.T) {
	p := AutoscalePolicy{TargetRatePerShard: 1000, SplitRate: 100}
	cases := []struct {
		name  string
		group GroupLoad
		want  int // 0 = no split
	}{
		{"hot rate first split", GroupLoad{Group: "g", RatePerSec: 500, Queues: 16}, 2},
		{"hot rate doubles", GroupLoad{Group: "g", RatePerSec: 500, Queues: 16, Subgroups: 2}, 4},
		{"hot backlog alone", GroupLoad{Group: "g", Backlog: 5000, Queues: 16}, 2},
		{"capped by queue count", GroupLoad{Group: "g", RatePerSec: 500, Queues: 5, Subgroups: 4}, 5},
		{"at MaxSubgroups", GroupLoad{Group: "g", RatePerSec: 500, Queues: 16, Subgroups: 8}, 0},
		{"single queue never splits", GroupLoad{Group: "g", RatePerSec: 500, Queues: 1}, 0},
		{"warm group holds", GroupLoad{Group: "g", RatePerSec: 99, Queues: 16}, 0},
		{"pinned never splits", GroupLoad{Group: "g", RatePerSec: 500, Queues: 16, Pinned: true}, 0},
	}
	for _, tc := range cases {
		d := p.Decide(FleetObservation{Now: policyNow, Shards: loadShards(500), Groups: []GroupLoad{tc.group}})
		if got := d.Splits[tc.group.Group]; got != tc.want {
			t.Errorf("%s: Splits[g] = %d, want %d (reason %q)", tc.name, got, tc.want, d.Reason)
		}
	}
}

func TestDecideMergeHysteresis(t *testing.T) {
	// SplitRate 100, SplitBacklog 4096, MergeFraction 0.25: merge only
	// when rate < 25 AND backlog < 1024.
	p := AutoscalePolicy{TargetRatePerShard: 1000, SplitRate: 100}
	cases := []struct {
		name  string
		group GroupLoad
		merge bool
	}{
		{"cooled", GroupLoad{Group: "g", RatePerSec: 20, Backlog: 100, Queues: 16, Subgroups: 4}, true},
		{"rate in hysteresis band", GroupLoad{Group: "g", RatePerSec: 30, Backlog: 100, Queues: 16, Subgroups: 4}, false},
		{"backlog in hysteresis band", GroupLoad{Group: "g", RatePerSec: 20, Backlog: 2000, Queues: 16, Subgroups: 4}, false},
		{"cooled but not split", GroupLoad{Group: "g", RatePerSec: 20, Backlog: 100, Queues: 16}, false},
	}
	for _, tc := range cases {
		d := p.Decide(FleetObservation{Now: policyNow, Shards: loadShards(20), Groups: []GroupLoad{tc.group}})
		if got := len(d.Merges) == 1; got != tc.merge {
			t.Errorf("%s: Merges = %v, want merge=%v", tc.name, d.Merges, tc.merge)
		}
	}
}

func TestDecideSplitCooldown(t *testing.T) {
	p := AutoscalePolicy{TargetRatePerShard: 1000, SplitRate: 100, SplitCooldown: 10 * time.Second}
	hot := GroupLoad{Group: "g", RatePerSec: 500, Queues: 16}
	d := p.Decide(FleetObservation{
		Now: policyNow, Shards: loadShards(500), Groups: []GroupLoad{hot},
		LastSplit: policyNow.Add(-time.Second),
	})
	if len(d.Splits) != 0 {
		t.Errorf("split fired inside cooldown: %v", d.Splits)
	}
	d = p.Decide(FleetObservation{
		Now: policyNow, Shards: loadShards(500), Groups: []GroupLoad{hot},
		LastSplit: policyNow.Add(-11 * time.Second),
	})
	if d.Splits["g"] != 2 {
		t.Errorf("split suppressed after cooldown expired: %v (reason %q)", d.Splits, d.Reason)
	}
}

func TestDecideFleetScaling(t *testing.T) {
	p := AutoscalePolicy{MinShards: 1, MaxShards: 4, TargetRatePerShard: 100}

	// Utilization 1.0 on 2 shards: upGain (0.2) beats upCost (0.5/3).
	hot := FleetObservation{Now: policyNow, Shards: loadShards(100, 100)}
	if d := p.Decide(hot); d.Delta != 1 {
		t.Errorf("hot fleet: Delta = %d, want 1 (reason %q)", d.Delta, d.Reason)
	}
	// Up cooldown suppresses.
	hot.LastScaleUp = policyNow.Add(-time.Second)
	if d := p.Decide(hot); d.Delta != 0 {
		t.Errorf("Delta = %d inside up cooldown", d.Delta)
	}
	// At MaxShards nothing grows.
	capped := FleetObservation{Now: policyNow, Shards: loadShards(100, 100, 100, 100)}
	if d := p.Decide(capped); d.Delta != 0 {
		t.Errorf("Delta = %d at MaxShards", d.Delta)
	}

	// Utilization 0.02 on 2 shards: downGain ((0.3-0.02)·1) beats
	// downCost (0.5/2).
	idle := FleetObservation{Now: policyNow, Shards: loadShards(2, 2)}
	if d := p.Decide(idle); d.Delta != -1 {
		t.Errorf("idle fleet: Delta = %d, want -1 (reason %q)", d.Delta, d.Reason)
	}
	// A recent scale-up resets the down cooldown: fresh capacity is not
	// retired the next tick.
	idle.LastScaleUp = policyNow.Add(-time.Second)
	if d := p.Decide(idle); d.Delta != 0 {
		t.Errorf("Delta = %d right after a scale-up", d.Delta)
	}
	// At MinShards nothing shrinks.
	floor := FleetObservation{Now: policyNow, Shards: loadShards(0)}
	if d := p.Decide(floor); d.Delta != 0 {
		t.Errorf("Delta = %d at MinShards", d.Delta)
	}
	// Mid-band utilization holds steady.
	steady := FleetObservation{Now: policyNow, Shards: loadShards(50, 50)}
	if d := p.Decide(steady); d.Delta != 0 {
		t.Errorf("steady fleet: Delta = %d (reason %q)", d.Delta, d.Reason)
	}
}

func TestDecideWeightNudges(t *testing.T) {
	p := AutoscalePolicy{TargetRatePerShard: 1000}

	// s0 serves 3x the load of s1: its arc shrinks, s1's grows (bounded
	// to 2x per tick).
	d := p.Decide(FleetObservation{Now: policyNow, Shards: loadShards(300, 100)})
	if w := d.Weights["s0"]; w >= 1 || w < 0.5 {
		t.Errorf("hot shard weight = %v, want in [0.5, 1)", d.Weights["s0"])
	}
	if w := d.Weights["s1"]; w != 2 {
		t.Errorf("cool shard weight = %v, want the 2x bound", w)
	}

	// Near-equal load is inside the deadband: no churn.
	d = p.Decide(FleetObservation{Now: policyNow, Shards: loadShards(110, 90)})
	if len(d.Weights) != 0 {
		t.Errorf("deadband breached for near-equal load: %v", d.Weights)
	}

	// A silent shard's rate is floored, so its arc grows boundedly
	// instead of exploding toward the clamp.
	d = p.Decide(FleetObservation{Now: policyNow, Shards: loadShards(1000, 0)})
	if w := d.Weights["s1"]; w != 2 {
		t.Errorf("silent shard weight = %v, want the bounded 2", w)
	}

	// One shard has nothing to balance against.
	d = p.Decide(FleetObservation{Now: policyNow, Shards: loadShards(1000)})
	if len(d.Weights) != 0 {
		t.Errorf("single-shard fleet nudged weights: %v", d.Weights)
	}
}

// TestAutoscalerLifecycle drives the real runner against a live router
// with deterministic ticks: load grows the fleet through the reserve
// then the factory, idleness shrinks it back — retiring only shards the
// autoscaler itself added, newest first.
func TestAutoscalerLifecycle(t *testing.T) {
	r := NewRouter(Config{ForwardInterval: time.Millisecond})
	defer r.Close()
	if err := r.AddShard("s0", queue.NewService(queue.Config{Seed: 1})); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateQueue("lq"); err != nil {
		t.Fatal(err)
	}

	spawned := 0
	a := NewAutoscaler(r, AutoscalerConfig{
		Policy: AutoscalePolicy{
			MinShards:          1,
			MaxShards:          3,
			TargetRatePerShard: 50,
			UpCooldown:         time.Nanosecond,
			DownCooldown:       time.Nanosecond,
			Window:             1,
		},
		Reserve: []ReserveShard{{ID: "warm-0", Backend: queue.NewService(queue.Config{Seed: 2})}},
		Factory: func(id string) (queue.API, error) {
			spawned++
			return queue.NewService(queue.Config{Seed: 10}), nil
		},
	})

	now := policyNow
	if d := a.Tick(now); d.Delta != 0 {
		t.Fatalf("first tick acted before a baseline existed: %+v", d)
	}
	send := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := r.SendMessage("lq", []byte("m")); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Sustained load: each tick sees ~200 req/s against a 50/s target,
	// growing one shard per tick — warm reserve first, then the factory —
	// until MaxShards.
	fleets := []int{2, 3, 3}
	for i, want := range fleets {
		send(200)
		now = now.Add(time.Second)
		a.Tick(now)
		if got := len(r.Shards()); got != want {
			t.Fatalf("tick %d: fleet = %d, want %d (decision %q)", i, got, want, a.Status().LastDecision.Reason)
		}
	}
	st := a.Status()
	if st.ReserveLeft != 0 || spawned != 1 {
		t.Fatalf("reserve-first supply violated: reserveLeft=%d spawned=%d", st.ReserveLeft, spawned)
	}
	if len(st.Added) != 2 || st.Added[0] != "warm-0" || st.Added[1] != "auto-0" {
		t.Fatalf("Added = %v, want [warm-0 auto-0]", st.Added)
	}

	// Drain the backlog so idleness is real, then idle ticks shrink the
	// fleet back — newest first, never the operator's s0.
	for {
		m, ok, err := r.ReceiveMessage("lq", time.Minute)
		if err != nil || !ok {
			break
		}
		if err := r.DeleteMessage("lq", m.ReceiptHandle); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4 && len(r.Shards()) > 1; i++ {
		now = now.Add(time.Second)
		a.Tick(now)
	}
	if got := r.Shards(); len(got) != 1 || got[0] != "s0" {
		t.Fatalf("fleet after idle ticks = %v, want [s0]", got)
	}
	if st := a.Status(); len(st.Added) != 0 {
		t.Fatalf("Added after full shrink = %v, want empty", st.Added)
	}
	a.Close()
}
