package shard

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/queue"
)

// Failover: replacing a dead shard's backend in place.
//
// A shard id is a stable routing name — receipts embed it (wrapReceipt)
// and the ring hashes over it — so recovering a dead shard must keep
// the id and swap what it points to. A standby is registered per shard
// as a promotion thunk (typically queue.Follower.Promote, which folds
// the primary's journal tail and returns a live Service with every
// receipt and lease intact); Failover runs the thunk and atomically
// re-points the id at the promoted backend. Because the follower
// replayed the same journal the primary wrote ahead of every
// acknowledgement, no acknowledged message is lost and delivery counts
// keep advancing — a poison message stays on its way to the
// dead-letter queue with no reset.
//
// StartHealthChecks turns the mechanism into a policy: a background
// loop probes each shard's liveness (queue.Pinger when offered) and
// fails over automatically when a probed shard with a standby stops
// answering.

// ErrNoStandby rejects a failover of a shard with no registered
// standby.
var ErrNoStandby = errors.New("shard: no standby registered for shard")

// standby is one registered promotion thunk plus its in-flight flag:
// set while a Failover is running the thunk, so the registration is
// only consumed on success and a failed promotion stays retryable.
type standby struct {
	promote  func() (queue.API, error)
	inflight bool
}

// SetStandby registers a promotion thunk for a shard: Failover(id)
// calls it and installs whatever backend it returns under the same
// shard id. Registering again replaces the previous standby (the old
// one is NOT promoted or closed — the caller owns its lifecycle). The
// thunk must only be safe to call when the current backend is
// confirmed dead; the router never runs it twice concurrently, and a
// promotion that succeeds consumes the registration. A promotion that
// FAILS leaves the registration armed, so a retried Failover can run
// the thunk again — thunks must tolerate that (queue.Follower.Promote
// does: a failed final fold leaves the follower unpromoted).
func (r *Router) SetStandby(id string, promote func() (queue.API, error)) error {
	if promote == nil {
		return errors.New("shard: nil standby promotion")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.shards[id]; !ok {
		return ErrNoSuchShard
	}
	if r.standbys == nil {
		r.standbys = make(map[string]*standby)
	}
	r.standbys[id] = &standby{promote: promote}
	return nil
}

// Failover promotes the shard's registered standby and swaps it in
// under the same id, consuming the registration only once promotion
// succeeds — a transient promotion failure (e.g. a blob error during
// the final fold) leaves the standby registered so the failover can be
// retried. Routing state — the ring, routes, placement groups — is
// untouched: the id still owns exactly the queues it owned, and
// receipts issued by the dead backend route to the promoted one (which
// replayed the journal that makes them live). Concurrent data-plane
// calls see either the old backend (failing with whatever the dead
// shard returns, e.g. queue.ErrHalted) or the promoted one; callers
// that retry converge.
func (r *Router) Failover(id string) error {
	// Serialize with topology changes: a migration streaming messages
	// off this shard must not race the backend swap.
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	r.mu.Lock()
	sb := r.standbys[id]
	if sb == nil {
		r.mu.Unlock()
		if _, ok := r.shards[id]; !ok {
			return ErrNoSuchShard
		}
		return fmt.Errorf("%w: %s", ErrNoStandby, id)
	}
	if sb.inflight {
		r.mu.Unlock()
		return fmt.Errorf("shard: failover already in flight for %s", id)
	}
	sb.inflight = true
	r.mu.Unlock()
	// Promotion folds the journal tail — blob I/O, done outside r.mu so
	// the data plane keeps routing while the standby catches up.
	b, err := sb.promote()
	r.mu.Lock()
	sb.inflight = false
	if err != nil {
		r.mu.Unlock()
		return fmt.Errorf("shard: promoting standby for %s: %w", id, err)
	}
	// Consume the registration — unless SetStandby replaced it while
	// the promotion ran, in which case the newer standby stays armed.
	if r.standbys[id] == sb {
		delete(r.standbys, id)
	}
	r.shards[id] = b
	r.mu.Unlock()
	return nil
}

// HasStandby reports whether a standby is registered for the shard.
func (r *Router) HasStandby(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.standbys[id] != nil
}

// Standbys lists the shard ids that currently have a registered
// standby, sorted for stable display.
func (r *Router) Standbys() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.standbys))
	for id := range r.standbys {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// StartHealthChecks launches a background probe loop: every interval,
// each shard offering queue.Pinger is pinged, and a shard that fails
// its probe while holding a registered standby is failed over
// automatically. Shards without a Pinger (remote clients) are left to
// operator-driven Failover. The loop stops at Close. Returns the
// number of loops running (always 1) mostly so callers can assert it
// started; calling it twice starts a second independent loop — don't.
func (r *Router) StartHealthChecks(interval time.Duration) {
	r.fwd.Add(1)
	go func() {
		defer r.fwd.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.closing:
				return
			case <-t.C:
				r.sweepHealth()
			}
		}
	}()
}

// Failovers reports how many automatic failovers the health loop has
// performed.
func (r *Router) Failovers() int64 { return r.failovers.Load() }

// sweepHealth probes every shard that both offers a liveness probe and
// has a standby to fail over to.
func (r *Router) sweepHealth() {
	r.mu.RLock()
	type probe struct {
		id   string
		ping queue.Pinger
	}
	var probes []probe
	for id := range r.standbys {
		if b := r.shards[id]; b != nil {
			if p, ok := b.(queue.Pinger); ok {
				probes = append(probes, probe{id, p})
			}
		}
	}
	r.mu.RUnlock()
	for _, p := range probes {
		if p.ping.Ping() == nil {
			continue
		}
		if err := r.Failover(p.id); err == nil {
			r.failovers.Add(1)
		}
	}
}
