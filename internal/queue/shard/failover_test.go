package shard

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/queue"
)

// durableShard builds a recovered durable service journaling under the
// given key.
func durableShard(t *testing.T, store *blob.Store, key string, seed int64) *queue.Service {
	t.Helper()
	s := queue.NewService(queue.Config{
		Seed: seed,
		Durability: &queue.Durability{
			Store:  store,
			Bucket: "shard-journal",
			Key:    key,
		},
	})
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	return s
}

// Failover swaps the promoted follower in under the same shard id:
// receipts issued by the dead primary stay routable and no
// acknowledged message is lost.
func TestFailoverPreservesReceiptsAndMessages(t *testing.T) {
	store := blob.NewStore(blob.Config{})
	r := NewRouter(Config{})
	defer r.Close()
	primary := durableShard(t, store, "shard-s0", 1)
	if err := r.AddShard("s0", primary); err != nil {
		t.Fatal(err)
	}
	follower, err := queue.NewFollower(queue.Config{
		Seed: 1,
		Durability: &queue.Durability{
			Store: store, Bucket: "shard-journal", Key: "shard-s0",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetStandby("s0", follower.PromoteAPI); err != nil {
		t.Fatal(err)
	}
	if !r.HasStandby("s0") {
		t.Fatal("standby not registered")
	}

	if err := r.CreateQueue("job/tasks"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := r.SendMessage("job/tasks", []byte(fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	m, ok, err := r.ReceiveMessage("job/tasks", time.Hour)
	if err != nil || !ok {
		t.Fatalf("receive: %v ok=%v", err, ok)
	}

	primary.Halt() // shard process dies holding one lease
	if _, _, err := r.ReceiveMessage("job/tasks", time.Hour); !errors.Is(err, queue.ErrHalted) {
		t.Fatalf("receive on dead shard: %v, want ErrHalted", err)
	}
	if err := r.Failover("s0"); err != nil {
		t.Fatal(err)
	}
	// The pre-crash receipt routes to the promoted backend and is live.
	if err := r.DeleteMessage("job/tasks", m.ReceiptHandle); err != nil {
		t.Errorf("pre-crash receipt after failover: %v", err)
	}
	vis, inf, err := r.ApproximateCount("job/tasks")
	if err != nil || vis != 7 || inf != 0 {
		t.Fatalf("post-failover depth = %d/%d (err %v), want 7/0", vis, inf, err)
	}
	// Traffic flows on the same shard id.
	drained := 0
	for {
		m, ok, err := r.ReceiveMessage("job/tasks", time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		drained++
		if err := r.DeleteMessage("job/tasks", m.ReceiptHandle); err != nil {
			t.Fatal(err)
		}
	}
	if drained != 7 {
		t.Errorf("drained %d messages after failover, want 7", drained)
	}
}

// Failover without a standby is an explicit error, not a silent no-op.
func TestFailoverRequiresStandby(t *testing.T) {
	r := NewRouter(Config{})
	defer r.Close()
	if err := r.AddShard("s0", queue.NewService(queue.Config{})); err != nil {
		t.Fatal(err)
	}
	if err := r.Failover("s0"); !errors.Is(err, ErrNoStandby) {
		t.Errorf("failover without standby: %v, want ErrNoStandby", err)
	}
	if err := r.Failover("nope"); !errors.Is(err, ErrNoSuchShard) {
		t.Errorf("failover of unknown shard: %v, want ErrNoSuchShard", err)
	}
	if err := r.SetStandby("nope", func() (queue.API, error) { return nil, nil }); !errors.Is(err, ErrNoSuchShard) {
		t.Errorf("standby for unknown shard: %v, want ErrNoSuchShard", err)
	}
}

// A promotion failure must not consume the standby registration: a
// transient blob error during the final fold leaves the follower
// alive, so a retried Failover promotes it instead of reporting
// ErrNoStandby and stranding the shard.
func TestFailoverRetryableAfterPromotionFailure(t *testing.T) {
	r := NewRouter(Config{})
	defer r.Close()
	if err := r.AddShard("s0", queue.NewService(queue.Config{})); err != nil {
		t.Fatal(err)
	}
	replacement := queue.NewService(queue.Config{})
	calls := 0
	err := r.SetStandby("s0", func() (queue.API, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient blob error")
		}
		return replacement, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Failover("s0"); err == nil {
		t.Fatal("failover with failing promotion reported success")
	}
	if !r.HasStandby("s0") {
		t.Fatal("failed promotion consumed the standby registration")
	}
	if err := r.Failover("s0"); err != nil {
		t.Fatalf("retry after transient promotion failure: %v", err)
	}
	if r.HasStandby("s0") {
		t.Error("successful promotion left the registration armed")
	}
	if calls != 2 {
		t.Errorf("promotion thunk ran %d times, want 2", calls)
	}
}

// The health loop notices a halted shard and promotes its standby
// without operator involvement.
func TestHealthCheckAutoFailover(t *testing.T) {
	store := blob.NewStore(blob.Config{})
	r := NewRouter(Config{})
	defer r.Close()
	primary := durableShard(t, store, "shard-s0", 1)
	if err := r.AddShard("s0", primary); err != nil {
		t.Fatal(err)
	}
	follower, err := queue.NewFollower(queue.Config{
		Seed: 1,
		Durability: &queue.Durability{
			Store: store, Bucket: "shard-journal", Key: "shard-s0",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	follower.Start(2 * time.Millisecond)
	if err := r.SetStandby("s0", follower.PromoteAPI); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SendMessage("q", []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	r.StartHealthChecks(2 * time.Millisecond)
	primary.Halt()
	deadline := time.Now().Add(5 * time.Second)
	for r.Failovers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("health loop never failed over the halted shard")
		}
		time.Sleep(2 * time.Millisecond)
	}
	m, ok, err := r.ReceiveMessage("q", time.Minute)
	if err != nil || !ok || string(m.Body) != "survivor" {
		t.Fatalf("post-failover receive: %v ok=%v body=%q", err, ok, m.Body)
	}
}
