// Package shard fronts N queue services with one queue.API: a
// consistent-hash router maps queue names to shards, so a namespace
// that outgrows one service process spreads across many without the
// consumers (classiccloud, broker, twister) changing a line.
//
// # Ring
//
// Each shard contributes VirtualNodes points to a hash ring; a queue
// lives on the shard owning the first point at or after the hash of
// its placement-group key. Virtual nodes keep the split even, and —
// the property the router's rebalancing depends on — adding a shard to
// an N-shard ring moves only ~1/(N+1) of the groups, all of them onto
// the new shard.
//
// Arcs are weighted: a shard's share of the key space scales with its
// weight (default 1.0), set from observed load so Rebalance converges
// toward equal load rather than equal key space. A shard's virtual
// nodes are the prefix "id#0..id#(n-1)" of one deterministic sequence,
// so raising a weight only adds points and lowering it only removes
// them — weight changes move the minimal set of groups, the same
// property shard adds have.
//
// # Placement groups
//
// The ring hashes DeriveGroup(name) — the prefix before the first '/',
// or the whole name — rather than the raw queue name, so "job-7/tasks",
// "job-7/monitor", and "job-7/dead" co-locate on one shard and a job's
// queue traffic never crosses shards. Router.Regroup assigns an
// explicit group to a queue whose name predates the convention and
// migrates it onto the group's shard.
//
// # Migration
//
// Shards can be added and removed at runtime. Moving a queue is
// drain-and-forward: the router freezes the queue (new operations
// block), streams the visible backlog to the new owner, then thaws with
// the route switched. Messages in flight on the old shard stay there
// until their consumer deletes them — receipt handles embed the issuing
// shard, so acknowledgements and lease renewals keep routing to it —
// and a background forwarder moves any that expire instead, until the
// old queue is empty or the lease horizon passes. Work is never lost
// and never duplicated beyond the at-least-once contract the queue
// already has.
//
// Migration moves messages through the privileged transfer API
// (queue.Transferrer), which carries each message's delivery count to
// the new owner: a poison task's progress toward a MaxReceives
// dead-letter cap survives the move, so consumers like classiccloud
// dead-letter after exactly MaxReceives receives no matter how often
// the topology changed underneath them. Two bounded caveats: a drain
// attempt that fails AFTER receiving a batch (transfer error, then
// abort) leaves those messages' counts advanced by that one receive —
// each failed attempt can consume at most one unit of retry budget,
// erring toward earlier dead-lettering, never toward retrying forever.
// And when a destination cannot take transfers at all — a remote shard
// without its admin token provisioned — the migrator falls back to a
// public re-send, which restarts the count like an SQS queue-to-queue
// move.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Weight bounds: a shard can hold at most 16x and at least 1/16 of its
// fair share. Wider ratios would let a runaway load estimate starve a
// shard to a single virtual node (terrible balance) or balloon the
// point list.
const (
	minWeight = 1.0 / 16
	maxWeight = 16.0
)

// ring is a consistent-hash ring over shard ids. It is not
// concurrency-safe; the Router guards it.
type ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	ids     map[string]bool
	weights map[string]float64
}

type ringPoint struct {
	hash  uint64
	shard string
	// index is the point's position in the shard's deterministic
	// "id#v" sequence; weight changes trim or extend by index.
	index int
}

func newRing(vnodes int) *ring {
	return &ring{vnodes: vnodes, ids: make(map[string]bool), weights: make(map[string]float64)}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is splitmix64's finalizer. FNV alone clusters the short,
// similar strings queue and vnode names are made of, which skews the
// ring arcs badly; the avalanche pass spreads them uniformly while
// staying deterministic across processes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// clampWeight pins a weight into [minWeight, maxWeight]; NaN and
// non-positive values reset to 1 rather than silently emptying a
// shard's arc.
func clampWeight(w float64) float64 {
	if !(w > 0) { // catches NaN too
		return 1
	}
	if w < minWeight {
		return minWeight
	}
	if w > maxWeight {
		return maxWeight
	}
	return w
}

// pointCount is the number of virtual nodes a weight buys: the
// configured vnodes scaled by the weight, never below one (a live
// shard always owns some arc).
func (r *ring) pointCount(w float64) int {
	n := int(float64(r.vnodes)*w + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// add registers a shard's virtual nodes at weight 1.
func (r *ring) add(id string) {
	if r.ids[id] {
		return
	}
	r.ids[id] = true
	r.weights[id] = 1
	r.appendPoints(id, r.pointCount(1))
	r.sortPoints()
}

// setWeight rescales a shard's arc. The shard's points are the prefix
// of one deterministic "id#v" sequence, so the rebuild keeps every
// point the old and new counts share — only the difference moves
// groups. Reports whether the point count actually changed.
func (r *ring) setWeight(id string, w float64) bool {
	if !r.ids[id] {
		return false
	}
	w = clampWeight(w)
	oldN := r.pointCount(r.weights[id])
	newN := r.pointCount(w)
	r.weights[id] = w
	if newN == oldN {
		return false
	}
	if newN < oldN {
		kept := r.points[:0]
		for _, p := range r.points {
			if p.shard == id && p.index >= newN {
				continue
			}
			kept = append(kept, p)
		}
		r.points = kept
		return true
	}
	for v := oldN; v < newN; v++ {
		r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", id, v)), id, v})
	}
	r.sortPoints()
	return true
}

// weight returns a shard's current weight (0 for a shard not on the
// ring).
func (r *ring) weight(id string) float64 {
	if !r.ids[id] {
		return 0
	}
	return r.weights[id]
}

func (r *ring) appendPoints(id string, n int) {
	for v := 0; v < n; v++ {
		r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", id, v)), id, v})
	}
}

func (r *ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// remove drops a shard's virtual nodes.
func (r *ring) remove(id string) {
	if !r.ids[id] {
		return
	}
	delete(r.ids, id)
	delete(r.weights, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// owner returns the shard owning key, or ok=false on an empty ring.
// The ring walk is deterministic: every process with the same member
// set computes the same owner.
func (r *ring) owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.successor(key, 0)
}

// successor returns the i-th DISTINCT shard at or after key's hash in
// ring order — the walk replica placement uses, here carrying sub-arc
// placement for split groups: sub-arc i of a group lands on the i-th
// distinct successor of the group's own hash, so k sub-arcs are
// guaranteed to spread over min(k, members) different shards. Hashing
// "group#i" as an ordinary key cannot promise that (several sub-keys
// routinely collapse onto one lucky shard), and a collapsed split
// relieves nothing. i wraps modulo the member count, and the walk is
// as deterministic as owner's.
func (r *ring) successor(key string, i int) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	if n := len(r.ids); n > 0 {
		i %= n
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	var seen map[string]bool
	for j := 0; j < len(r.points); j++ {
		p := r.points[(start+j)%len(r.points)]
		if i == 0 {
			return p.shard, true
		}
		if seen == nil {
			seen = make(map[string]bool, i+1)
		}
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		if len(seen) == i+1 {
			return p.shard, true
		}
	}
	// Unreachable: i < len(r.ids) and every id owns at least one point.
	return r.points[start].shard, true
}

// members returns the shard ids on the ring, sorted.
func (r *ring) members() []string {
	out := make([]string, 0, len(r.ids))
	for id := range r.ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
