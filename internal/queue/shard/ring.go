// Package shard fronts N queue services with one queue.API: a
// consistent-hash router maps queue names to shards, so a namespace
// that outgrows one service process spreads across many without the
// consumers (classiccloud, broker, twister) changing a line.
//
// # Ring
//
// Each shard contributes VirtualNodes points to a hash ring; a queue
// lives on the shard owning the first point at or after the hash of
// its placement-group key. Virtual nodes keep the split even, and —
// the property the router's rebalancing depends on — adding a shard to
// an N-shard ring moves only ~1/(N+1) of the groups, all of them onto
// the new shard.
//
// # Placement groups
//
// The ring hashes DeriveGroup(name) — the prefix before the first '/',
// or the whole name — rather than the raw queue name, so "job-7/tasks",
// "job-7/monitor", and "job-7/dead" co-locate on one shard and a job's
// queue traffic never crosses shards. Router.Regroup assigns an
// explicit group to a queue whose name predates the convention and
// migrates it onto the group's shard.
//
// # Migration
//
// Shards can be added and removed at runtime. Moving a queue is
// drain-and-forward: the router freezes the queue (new operations
// block), streams the visible backlog to the new owner, then thaws with
// the route switched. Messages in flight on the old shard stay there
// until their consumer deletes them — receipt handles embed the issuing
// shard, so acknowledgements and lease renewals keep routing to it —
// and a background forwarder moves any that expire instead, until the
// old queue is empty or the lease horizon passes. Work is never lost
// and never duplicated beyond the at-least-once contract the queue
// already has.
//
// Migration moves messages through the privileged transfer API
// (queue.Transferrer), which carries each message's delivery count to
// the new owner: a poison task's progress toward a MaxReceives
// dead-letter cap survives the move, so consumers like classiccloud
// dead-letter after exactly MaxReceives receives no matter how often
// the topology changed underneath them. Two bounded caveats: a drain
// attempt that fails AFTER receiving a batch (transfer error, then
// abort) leaves those messages' counts advanced by that one receive —
// each failed attempt can consume at most one unit of retry budget,
// erring toward earlier dead-lettering, never toward retrying forever.
// And when a destination cannot take transfers at all — a remote shard
// without its admin token provisioned — the migrator falls back to a
// public re-send, which restarts the count like an SQS queue-to-queue
// move.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over shard ids. It is not
// concurrency-safe; the Router guards it.
type ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	ids    map[string]bool
}

type ringPoint struct {
	hash  uint64
	shard string
}

func newRing(vnodes int) *ring {
	return &ring{vnodes: vnodes, ids: make(map[string]bool)}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is splitmix64's finalizer. FNV alone clusters the short,
// similar strings queue and vnode names are made of, which skews the
// ring arcs badly; the avalanche pass spreads them uniformly while
// staying deterministic across processes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// add registers a shard's virtual nodes.
func (r *ring) add(id string) {
	if r.ids[id] {
		return
	}
	r.ids[id] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", id, v)), id})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// remove drops a shard's virtual nodes.
func (r *ring) remove(id string) {
	if !r.ids[id] {
		return
	}
	delete(r.ids, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// owner returns the shard owning key, or ok=false on an empty ring.
// The ring walk is deterministic: every process with the same member
// set computes the same owner.
func (r *ring) owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard, true
}

// members returns the shard ids on the ring, sorted.
func (r *ring) members() []string {
	out := make([]string, 0, len(r.ids))
	for id := range r.ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
