package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/queue"
)

// TestGroupedQueuesCoLocate: all queues sharing a placement-group
// prefix land on one shard, for every group, across many groups.
func TestGroupedQueuesCoLocate(t *testing.T) {
	r, _ := newTestRouter(t, 4)
	const jobs = 40
	for i := 0; i < jobs; i++ {
		for _, suffix := range []string{"tasks", "monitor", "dead"} {
			if err := r.CreateQueue(fmt.Sprintf("job-%d/%s", i, suffix)); err != nil {
				t.Fatal(err)
			}
		}
	}
	owners := r.Owners()
	spread := map[string]bool{}
	for i := 0; i < jobs; i++ {
		home := owners[fmt.Sprintf("job-%d/tasks", i)]
		spread[home] = true
		for _, suffix := range []string{"monitor", "dead"} {
			qn := fmt.Sprintf("job-%d/%s", i, suffix)
			if owners[qn] != home {
				t.Errorf("%s on %s, but its group's home is %s", qn, owners[qn], home)
			}
		}
	}
	if len(spread) < 2 {
		t.Errorf("all %d groups on %d shard(s) — grouping collapsed the ring", jobs, len(spread))
	}
}

// addUntilMoved grows the ring until qn leaves its current owner,
// returning the new owner. Ring determinism bounds the attempts.
func addUntilMoved(t *testing.T, r *Router, qn string) string {
	t.Helper()
	before := r.Owners()[qn]
	for i := 0; i < 32; i++ {
		if err := r.AddShard(fmt.Sprintf("grow%d", i), queue.NewService(queue.Config{Seed: int64(100 + i)})); err != nil {
			t.Fatal(err)
		}
		if now := r.Owners()[qn]; now != before {
			return now
		}
	}
	t.Fatalf("queue %s never moved off %s", qn, before)
	return ""
}

// TestMigrationPreservesReceiveCounts: a message with accumulated
// deliveries keeps its count when its queue is drained to a new shard —
// the MaxReceives progress the privileged transfer API exists to
// protect.
func TestMigrationPreservesReceiveCounts(t *testing.T) {
	r, _ := newTestRouter(t, 1)
	qn := queueOwnedBy(t, r, "s0", 16)
	if _, err := r.SendMessage(qn, []byte("poison")); err != nil {
		t.Fatal(err)
	}
	// Two failed delivery attempts: receive, then release the lease.
	for i := 1; i <= 2; i++ {
		m, ok, err := r.ReceiveMessage(qn, time.Minute)
		if err != nil || !ok || m.Receives != i {
			t.Fatalf("delivery %d: ok=%v err=%v receives=%d", i, ok, err, m.Receives)
		}
		if err := r.ChangeVisibility(qn, m.ReceiptHandle, 0); err != nil {
			t.Fatal(err)
		}
	}
	// The message is visible, so the drain streams it.
	addUntilMoved(t, r, qn)
	m, ok, err := r.ReceiveMessage(qn, time.Minute)
	if err != nil || !ok {
		t.Fatalf("receive after migration: ok=%v err=%v", ok, err)
	}
	if m.Receives != 3 {
		t.Errorf("Receives after drain migration = %d, want 3 — delivery count was reset", m.Receives)
	}
}

// TestStragglerForwardPreservesReceiveCounts: a message in flight
// during the migration expires on the old shard and is forwarded by the
// background forwarder — with its count intact.
func TestStragglerForwardPreservesReceiveCounts(t *testing.T) {
	r := NewRouter(Config{ForwardInterval: time.Millisecond})
	defer r.Close()
	if err := r.AddShard("s0", queue.NewService(queue.Config{Seed: 1})); err != nil {
		t.Fatal(err)
	}
	qn := queueOwnedBy(t, r, "s0", 16)
	if _, err := r.SendMessage(qn, []byte("straggler")); err != nil {
		t.Fatal(err)
	}
	// Two deliveries; the second lease is short and still held when the
	// migration runs, so the message is invisible to the drain.
	if m, ok, err := r.ReceiveMessage(qn, time.Minute); err != nil || !ok {
		t.Fatalf("first delivery: ok=%v err=%v", ok, err)
	} else if err := r.ChangeVisibility(qn, m.ReceiptHandle, 0); err != nil {
		t.Fatal(err)
	}
	if m, ok, err := r.ReceiveMessage(qn, 30*time.Millisecond); err != nil || !ok || m.Receives != 2 {
		t.Fatalf("second delivery: ok=%v err=%v", ok, err)
	}
	addUntilMoved(t, r, qn)
	// The lease expires on s0; the forwarder transfers the message to
	// the new owner where its third delivery keeps counting.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, ok, err := r.ReceiveMessageWait(qn, time.Minute, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if m.Receives != 3 {
				t.Errorf("Receives after straggler forward = %d, want 3 — delivery count was reset", m.Receives)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("straggler never forwarded")
		}
	}
}

// TestRegroupMovesQueueToGroupShard: Regroup migrates an ungrouped
// legacy queue onto its group's shard — the migration story for
// namespaces that predate placement groups — and an empty group
// reverts to name-derived placement.
func TestRegroupMovesQueueToGroupShard(t *testing.T) {
	r, _ := newTestRouter(t, 4)
	// The group's home shard is wherever a grouped sibling lands.
	if err := r.CreateQueue("g7/anchor"); err != nil {
		t.Fatal(err)
	}
	home := r.Owners()["g7/anchor"]

	// A legacy queue with backlog, initially placed by its own name.
	if err := r.CreateQueue("legacy-tasks"); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 15; k++ {
		if _, err := r.SendMessage("legacy-tasks", []byte(fmt.Sprintf("m%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Regroup("legacy-tasks", "g7"); err != nil {
		t.Fatal(err)
	}
	if got := r.Owners()["legacy-tasks"]; got != home {
		t.Fatalf("after Regroup owner = %s, want the group home %s", got, home)
	}
	// Backlog survived the regroup migration.
	got := map[string]bool{}
	for len(got) < 15 {
		m, ok, err := r.ReceiveMessage("legacy-tasks", time.Minute)
		if err != nil || !ok {
			t.Fatalf("drained early after regroup: %d/15 (%v)", len(got), err)
		}
		got[string(m.Body)] = true
		if err := r.DeleteMessage("legacy-tasks", m.ReceiptHandle); err != nil {
			t.Fatal(err)
		}
	}
	// The explicit group sticks across topology changes: add shards and
	// confirm the legacy queue follows its group, not its name.
	addUntilMoved(t, r, "g7/anchor")
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	owners := r.Owners()
	if owners["legacy-tasks"] != owners["g7/anchor"] {
		t.Errorf("after topology change legacy-tasks on %s, group home %s — explicit group did not stick",
			owners["legacy-tasks"], owners["g7/anchor"])
	}
	// Reverting to the name-derived key works the same way.
	if err := r.Regroup("legacy-tasks", ""); err != nil {
		t.Fatal(err)
	}
	r.mu.RLock()
	want, _ := r.ring.owner(DeriveGroup("legacy-tasks"))
	r.mu.RUnlock()
	if got := r.Owners()["legacy-tasks"]; got != want {
		t.Errorf("after reverting group owner = %s, want name-derived %s", got, want)
	}
}

// TestRegroupErrors: unknown queues and malformed groups are
// sentinel-reported.
func TestRegroupErrors(t *testing.T) {
	r, _ := newTestRouter(t, 2)
	if err := r.Regroup("ghost", "g"); !errors.Is(err, queue.ErrNoSuchQueue) {
		t.Errorf("regroup unknown queue: %v, want ErrNoSuchQueue", err)
	}
	if err := r.Regroup("ghost", "job-7/tasks"); !errors.Is(err, ErrBadGroup) {
		t.Errorf("regroup with separator in group: %v, want ErrBadGroup", err)
	}
	// Regrouping onto the current owner is a no-op, not an error.
	if err := r.CreateQueue("steady/q"); err != nil {
		t.Fatal(err)
	}
	if err := r.Regroup("steady/q", "steady"); err != nil {
		t.Errorf("no-op regroup: %v", err)
	}
}

// TestRegroupRebalanceChurn is the serialization stress test: topology
// churn (AddShard/RemoveShard/Rebalance) races regroup churn on the
// same queues while producers and consumers run. Nothing may error
// beyond the expected sentinels, nothing may be lost, and once the
// churn stops the placement must converge: every queue sits on the
// ring owner of its final group.
func TestRegroupRebalanceChurn(t *testing.T) {
	r := NewRouter(Config{ForwardInterval: time.Millisecond})
	defer r.Close()
	for i := 0; i < 2; i++ {
		if err := r.AddShard(fmt.Sprintf("s%d", i), queue.NewService(queue.Config{Seed: int64(i + 1)})); err != nil {
			t.Fatal(err)
		}
	}
	const queues, perQueue = 6, 30
	for i := 0; i < queues; i++ {
		if err := r.CreateQueue(fmt.Sprintf("churn-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	got := make(map[string]bool)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Consumers.
	for i := 0; i < queues; i++ {
		qn := fmt.Sprintf("churn-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok, err := r.ReceiveMessageWait(qn, 10*time.Second, 10*time.Millisecond)
				if err != nil {
					t.Errorf("receive %s: %v", qn, err)
					return
				}
				if ok {
					mu.Lock()
					got[string(m.Body)] = true
					mu.Unlock()
					if err := r.DeleteMessage(qn, m.ReceiptHandle); err != nil &&
						!errors.Is(err, queue.ErrStaleReceipt) {
						t.Errorf("delete: %v", err)
					}
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	// Producers.
	var prod sync.WaitGroup
	for i := 0; i < queues; i++ {
		qn := fmt.Sprintf("churn-%d", i)
		prod.Add(1)
		go func() {
			defer prod.Done()
			for k := 0; k < perQueue; k++ {
				if _, err := r.SendMessage(qn, []byte(fmt.Sprintf("%s/m%d", qn, k))); err != nil {
					t.Errorf("send %s: %v", qn, err)
					return
				}
			}
		}()
	}

	// Regroup churn: every queue's group flips between 4 keys.
	var regroup sync.WaitGroup
	for w := 0; w < 3; w++ {
		regroup.Add(1)
		go func(seed int64) {
			defer regroup.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 30; n++ {
				qn := fmt.Sprintf("churn-%d", rng.Intn(queues))
				group := fmt.Sprintf("flock-%d", rng.Intn(4))
				if err := r.Regroup(qn, group); err != nil {
					t.Errorf("regroup %s -> %s: %v", qn, group, err)
				}
			}
		}(int64(w + 1))
	}
	// Topology churn racing the regroups.
	regroup.Add(1)
	go func() {
		defer regroup.Done()
		for i := 2; i < 6; i++ {
			if err := r.AddShard(fmt.Sprintf("s%d", i), queue.NewService(queue.Config{Seed: int64(i + 1)})); err != nil {
				t.Errorf("add s%d: %v", i, err)
			}
			if err := r.Rebalance(); err != nil {
				t.Errorf("rebalance: %v", err)
			}
		}
		if err := r.RemoveShard("s2"); err != nil {
			t.Errorf("remove s2: %v", err)
		}
	}()

	prod.Wait()
	regroup.Wait()

	// Convergence: after a final rebalance every queue sits on the ring
	// owner of its final group.
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	owners := r.Owners()
	for i := 0; i < queues; i++ {
		qn := fmt.Sprintf("churn-%d", i)
		r.mu.RLock()
		rt := r.routes[qn]
		r.mu.RUnlock()
		rt.mu.Lock()
		group := rt.group
		rt.mu.Unlock()
		r.mu.RLock()
		want, _ := r.ring.owner(effectiveGroup(group, qn))
		r.mu.RUnlock()
		if owners[qn] != want {
			t.Errorf("%s (group %q) on %s, ring owner %s — placement did not converge", qn, group, owners[qn], want)
		}
	}

	// Zero loss: every produced body is eventually consumed.
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == queues*perQueue {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lost messages under churn: consumed %d/%d unique bodies", n, queues*perQueue)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestRemoteShardMigrationPreservesCounts: the count-preserving
// transfer works over the wire — a queue drains onto a remote
// (HTTP-backed) shard whose transfer endpoint is provisioned, and the
// delivery count survives. Without the token the fallback re-send
// would reset it.
func TestRemoteShardMigrationPreservesCounts(t *testing.T) {
	const token = "migrate-sekrit"
	remote := queue.NewService(queue.Config{Seed: 7})
	srv := httptest.NewServer(&queue.HTTPHandler{Service: remote, AdminToken: token})
	defer srv.Close()

	r := NewRouter(Config{ForwardInterval: time.Millisecond})
	defer r.Close()
	if err := r.AddShard("s0", queue.NewService(queue.Config{Seed: 1})); err != nil {
		t.Fatal(err)
	}
	qn := queueOwnedBy(t, r, "s0", 16)
	if _, err := r.SendMessage(qn, []byte("counted")); err != nil {
		t.Fatal(err)
	}
	// Two deliveries, both released back to visible.
	for i := 1; i <= 2; i++ {
		m, ok, err := r.ReceiveMessage(qn, time.Minute)
		if err != nil || !ok || m.Receives != i {
			t.Fatalf("delivery %d: ok=%v err=%v", i, ok, err)
		}
		if err := r.ChangeVisibility(qn, m.ReceiptHandle, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Force the queue onto the remote shard: retire s0.
	if err := r.AddShard("remote", &queue.HTTPClient{BaseURL: srv.URL, AdminToken: token}); err != nil {
		t.Fatal(err)
	}
	if r.Owners()[qn] != "remote" {
		if err := r.RemoveShard("s0"); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Owners()[qn]; got != "remote" {
		t.Fatalf("queue on %s, want the remote shard", got)
	}
	m, ok, err := r.ReceiveMessage(qn, time.Minute)
	if err != nil || !ok {
		t.Fatalf("receive from remote shard: ok=%v err=%v", ok, err)
	}
	if m.Receives != 3 {
		t.Errorf("Receives after wire migration = %d, want 3 — count lost crossing the HTTP boundary", m.Receives)
	}
}
