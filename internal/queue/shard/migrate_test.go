package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/queue"
)

// movedQueue creates queues until one owned by `from` exists, then
// returns one that moves to `to` when `to` is added. It relies on ring
// determinism: owners are computed the same way AddShard will.
func queueOwnedBy(t *testing.T, r *Router, owner string, max int) string {
	t.Helper()
	for i := 0; i < max; i++ {
		qn := fmt.Sprintf("mq%d", i)
		if err := r.CreateQueue(qn); err != nil && !errors.Is(err, queue.ErrQueueExists) {
			t.Fatal(err)
		}
		if r.Owners()[qn] == owner {
			return qn
		}
	}
	t.Fatalf("no queue landed on shard %s", owner)
	return ""
}

// TestMigrationMovesBacklog: adding a shard re-homes queues with their
// visible backlog; nothing is lost, counts match, and the old shard's
// copy of a moved queue disappears once empty.
func TestMigrationMovesBacklog(t *testing.T) {
	r, svcs := newTestRouter(t, 2)
	const queues, perQueue = 24, 15
	sent := map[string]map[string]bool{}
	for i := 0; i < queues; i++ {
		qn := fmt.Sprintf("q%d", i)
		if err := r.CreateQueue(qn); err != nil {
			t.Fatal(err)
		}
		sent[qn] = map[string]bool{}
		for k := 0; k < perQueue; k++ {
			body := fmt.Sprintf("%s/task%d", qn, k)
			if _, err := r.SendMessage(qn, []byte(body)); err != nil {
				t.Fatal(err)
			}
			sent[qn][body] = true
		}
	}
	before := r.Owners()
	if err := r.AddShard("s2", queue.NewService(queue.Config{Seed: 33})); err != nil {
		t.Fatal(err)
	}
	after := r.Owners()
	moved := 0
	for qn, old := range before {
		if after[qn] != old {
			moved++
			if after[qn] != "s2" {
				t.Errorf("%s moved %s→%s, not to the new shard", qn, old, after[qn])
			}
		}
	}
	if moved == 0 {
		t.Fatal("adding a shard moved no queues — test has no power")
	}
	// Every message still receivable exactly where the router says.
	for qn, bodies := range sent {
		if v, inf, err := r.ApproximateCount(qn); err != nil || v != perQueue || inf != 0 {
			t.Fatalf("%s count after migration = %d,%d (%v)", qn, v, inf, err)
		}
		got := map[string]bool{}
		for len(got) < perQueue {
			m, ok, err := r.ReceiveMessage(qn, time.Minute)
			if err != nil || !ok {
				t.Fatalf("%s drained early: got %d/%d (%v)", qn, len(got), perQueue, err)
			}
			got[string(m.Body)] = true
			if err := r.DeleteMessage(qn, m.ReceiptHandle); err != nil {
				t.Fatalf("delete on %s: %v", qn, err)
			}
		}
		for body := range bodies {
			if !got[body] {
				t.Errorf("%s lost %q in migration", qn, body)
			}
		}
	}
	_ = svcs
}

// TestMigrationInFlightStraggler: a message leased before the migration
// stays acknowledgeable through its old receipt; an unacknowledged one
// expires on the old shard and is forwarded to the new owner.
func TestMigrationInFlightStraggler(t *testing.T) {
	r := NewRouter(Config{ForwardInterval: time.Millisecond})
	defer r.Close()
	s0 := queue.NewService(queue.Config{Seed: 1, DefaultVisibility: 30 * time.Millisecond})
	if err := r.AddShard("s0", s0); err != nil {
		t.Fatal(err)
	}
	qn := queueOwnedBy(t, r, "s0", 16)

	// ack: leased pre-migration, deleted post-migration via old receipt.
	if _, err := r.SendMessage(qn, []byte("ack")); err != nil {
		t.Fatal(err)
	}
	ackMsg, ok, err := r.ReceiveMessage(qn, time.Minute)
	if err != nil || !ok {
		t.Fatal("lease before migration failed")
	}
	// straggler: leased with a short visibility and never acknowledged.
	if _, err := r.SendMessage(qn, []byte("straggler")); err != nil {
		t.Fatal(err)
	}
	_, ok, err = r.ReceiveMessage(qn, 20*time.Millisecond)
	if err != nil || !ok {
		t.Fatal("straggler lease failed")
	}

	if err := r.AddShard("s1", queue.NewService(queue.Config{Seed: 2})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ { // force qn onto s1 regardless of hash luck
		if r.Owners()[qn] != "s0" {
			break
		}
		if err := r.RemoveShard("s0"); err != nil {
			t.Fatal(err)
		}
		break
	}
	if r.Owners()[qn] == "s0" {
		t.Fatal("queue did not move off s0")
	}

	// The pre-migration lease still acknowledges through the router.
	if err := r.DeleteMessage(qn, ackMsg.ReceiptHandle); err != nil {
		t.Errorf("ack via old-shard receipt after migration: %v", err)
	}

	// The straggler expires on s0 and must surface on the new owner.
	deadline := time.After(5 * time.Second)
	for {
		m, ok, err := r.ReceiveMessageWait(qn, time.Minute, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("receive while waiting for straggler: %v", err)
		}
		if ok {
			if string(m.Body) != "straggler" {
				t.Fatalf("unexpected message %q", m.Body)
			}
			if err := r.DeleteMessage(qn, m.ReceiptHandle); err != nil {
				t.Fatalf("delete forwarded straggler: %v", err)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("straggler never forwarded to the new owner")
		default:
		}
	}
	// Old shard's copy is eventually emptied and deleted by the forwarder.
	for start := time.Now(); ; {
		if _, _, err := s0.ApproximateCount(qn); errors.Is(err, queue.ErrNoSuchQueue) {
			break
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("old shard still holds the queue after forwarding finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMigrationUnderLoad: producers and consumers run through the
// router while shards are added and one is removed. Every produced body
// must be consumed at least once (no loss); duplicates are allowed by
// the at-least-once contract but deletes must land, so the namespace
// drains to empty.
func TestMigrationUnderLoad(t *testing.T) {
	r := NewRouter(Config{ForwardInterval: time.Millisecond})
	defer r.Close()
	if err := r.AddShard("s0", queue.NewService(queue.Config{Seed: 1})); err != nil {
		t.Fatal(err)
	}
	const queues, perQueue = 8, 50
	for i := 0; i < queues; i++ {
		if err := r.CreateQueue(fmt.Sprintf("q%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	got := make(map[string]bool)
	var wg sync.WaitGroup

	// Consumers: drain until told to stop.
	stop := make(chan struct{})
	for i := 0; i < queues; i++ {
		qn := fmt.Sprintf("q%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok, err := r.ReceiveMessageWait(qn, 10*time.Second, 20*time.Millisecond)
				if err != nil {
					return // queue deleted at teardown
				}
				if ok {
					mu.Lock()
					got[string(m.Body)] = true
					mu.Unlock()
					if err := r.DeleteMessage(qn, m.ReceiptHandle); err != nil &&
						!errors.Is(err, queue.ErrStaleReceipt) {
						t.Errorf("delete: %v", err)
					}
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	// Producers.
	var prod sync.WaitGroup
	for i := 0; i < queues; i++ {
		qn := fmt.Sprintf("q%d", i)
		prod.Add(1)
		go func() {
			defer prod.Done()
			for k := 0; k < perQueue; k++ {
				if _, err := r.SendMessage(qn, []byte(fmt.Sprintf("%s/m%d", qn, k))); err != nil {
					t.Errorf("send %s: %v", qn, err)
					return
				}
			}
		}()
	}

	// Topology churn while traffic flows.
	if err := r.AddShard("s1", queue.NewService(queue.Config{Seed: 2})); err != nil {
		t.Fatal(err)
	}
	if err := r.AddShard("s2", queue.NewService(queue.Config{Seed: 3})); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveShard("s0"); err != nil {
		t.Fatal(err)
	}
	prod.Wait()

	// Wait for the consumers to account for every body.
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == queues*perQueue {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lost messages: consumed %d/%d unique bodies", n, queues*perQueue)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Namespace drains: counts reach zero everywhere (deletes landed).
	for i := 0; i < queues; i++ {
		qn := fmt.Sprintf("q%d", i)
		ok := false
		for start := time.Now(); time.Since(start) < 5*time.Second; {
			v, inf, err := r.ApproximateCount(qn)
			if err != nil {
				t.Fatalf("count %s: %v", qn, err)
			}
			if v == 0 && inf == 0 {
				ok = true
				break
			}
			// Residual redeliveries from at-least-once forwarding: drain.
			if m, mOk, _ := r.ReceiveMessage(qn, time.Minute); mOk {
				_ = r.DeleteMessage(qn, m.ReceiptHandle)
			}
		}
		if !ok {
			v, inf, _ := r.ApproximateCount(qn)
			t.Errorf("%s never drained: %d visible, %d in flight", qn, v, inf)
		}
	}
}

// TestMigrateBackDoesNotDeleteLiveQueue: regression for the stale
// forwarder after an add-then-remove cycle. A queue moves off its shard
// and back onto it while an in-flight message keeps the first
// forwarder alive; the forwarder must not count the live copy as a
// draining remnant (double counts) nor delete it once it drains to
// empty (queue loss).
func TestMigrateBackDoesNotDeleteLiveQueue(t *testing.T) {
	r := NewRouter(Config{ForwardInterval: time.Millisecond})
	defer r.Close()
	if err := r.AddShard("s0", queue.NewService(queue.Config{Seed: 1})); err != nil {
		t.Fatal(err)
	}
	qn := queueOwnedBy(t, r, "s0", 16)

	// An in-flight lease keeps s0 non-empty so the forwarder spawned by
	// the move off s0 stays alive across the move back.
	if _, err := r.SendMessage(qn, []byte("held")); err != nil {
		t.Fatal(err)
	}
	held, ok, err := r.ReceiveMessage(qn, time.Minute)
	if err != nil || !ok {
		t.Fatal("lease failed")
	}

	if err := r.AddShard("s1", queue.NewService(queue.Config{Seed: 2})); err != nil {
		t.Fatal(err)
	}
	if r.Owners()[qn] == "s0" {
		t.Skip("queue did not move off s0 for this name set")
	}
	if err := r.RemoveShard("s1"); err != nil {
		t.Fatal(err)
	}
	if got := r.Owners()[qn]; got != "s0" {
		t.Fatalf("queue did not move back to s0 (owner %s)", got)
	}

	// No double counting: exactly one in-flight message.
	if v, inf, err := r.ApproximateCount(qn); err != nil || v != 0 || inf != 1 {
		t.Fatalf("count after migrate-back = %d,%d (%v), want 0,1", v, inf, err)
	}

	// Ack, let the stale forwarder observe an empty live queue for a
	// while, and prove it neither deleted nor disturbed it.
	if err := r.DeleteMessage(qn, held.ReceiptHandle); err != nil {
		t.Fatalf("ack across migrate-back: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := r.SendMessage(qn, []byte("alive")); err != nil {
		t.Fatalf("queue was deleted by a stale forwarder: %v", err)
	}
	m, ok, err := r.ReceiveMessage(qn, time.Minute)
	if err != nil || !ok || string(m.Body) != "alive" {
		t.Fatalf("live queue broken after migrate-back: ok=%v err=%v", ok, err)
	}
	if err := r.DeleteMessage(qn, m.ReceiptHandle); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteQueueDuringRebalance: deleting a queue while a shard add
// migrates it must not leave a ghost copy of its messages on any
// backend — a migration that loses the race streams nothing, one that
// wins is followed by a delete on the new owner.
func TestDeleteQueueDuringRebalance(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		r := NewRouter(Config{ForwardInterval: time.Millisecond})
		s0 := queue.NewService(queue.Config{Seed: 1})
		if err := r.AddShard("s0", s0); err != nil {
			t.Fatal(err)
		}
		const queues = 8
		for i := 0; i < queues; i++ {
			qn := fmt.Sprintf("q%d", i)
			if err := r.CreateQueue(qn); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 5; k++ {
				if _, err := r.SendMessage(qn, []byte("m")); err != nil {
					t.Fatal(err)
				}
			}
		}
		s1 := queue.NewService(queue.Config{Seed: 2})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := r.AddShard("s1", s1); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < queues; i++ {
				if err := r.DeleteQueue(fmt.Sprintf("q%d", i)); err != nil &&
					!errors.Is(err, queue.ErrNoSuchQueue) {
					t.Errorf("delete q%d: %v", i, err)
				}
			}
		}()
		wg.Wait()
		r.Close() // forwarders finish before the backend check
		for i := 0; i < queues; i++ {
			qn := fmt.Sprintf("q%d", i)
			for name, svc := range map[string]*queue.Service{"s0": s0, "s1": s1} {
				v, inf, err := svc.ApproximateCount(qn)
				if err == nil && (v > 0 || inf > 0) {
					t.Fatalf("iter %d: ghost queue %s on %s with %d/%d messages", iter, qn, name, v, inf)
				}
			}
		}
	}
}

// faultyBackend wraps a queue.API and fails receives after a fuse of
// successful calls — a transient remote-shard failure.
type faultyBackend struct {
	queue.API
	mu   sync.Mutex
	fuse int // receives remaining before failures start
	errs int // failures to inject once the fuse burns
}

func (f *faultyBackend) ReceiveMessageBatch(q string, vis time.Duration, max int, wait time.Duration) ([]queue.Message, error) {
	f.mu.Lock()
	if f.fuse > 0 {
		f.fuse--
	} else if f.errs > 0 {
		f.errs--
		f.mu.Unlock()
		return nil, errors.New("injected: connection reset")
	}
	f.mu.Unlock()
	return f.API.ReceiveMessageBatch(q, vis, max, wait)
}

// TestRebalanceRetriesFailedMigration: a migration that dies mid-drain
// leaves the queue usable on its old shard and the already-streamed
// messages recoverable; Rebalance converges the namespace once the
// fault clears, with nothing lost.
func TestRebalanceRetriesFailedMigration(t *testing.T) {
	r := NewRouter(Config{ForwardInterval: time.Millisecond})
	defer r.Close()
	flaky := &faultyBackend{API: queue.NewService(queue.Config{Seed: 1})}
	if err := r.AddShard("s0", flaky); err != nil {
		t.Fatal(err)
	}
	qn := queueOwnedBy(t, r, "s0", 16)
	const n = 25 // 3 batches: fail on the second drain receive
	sent := map[string]bool{}
	for k := 0; k < n; k++ {
		body := fmt.Sprintf("m%d", k)
		if _, err := r.SendMessage(qn, []byte(body)); err != nil {
			t.Fatal(err)
		}
		sent[body] = true
	}

	// First drain receive succeeds (10 messages stream to the new
	// owner), then the shard "drops the connection".
	flaky.mu.Lock()
	flaky.fuse, flaky.errs = 1, 3
	flaky.mu.Unlock()
	err := r.AddShard("s1", queue.NewService(queue.Config{Seed: 2}))
	if err == nil {
		t.Skip("no queue moved, or drain finished within the fuse")
	}

	// The queue still works through the router mid-divergence.
	if _, err := r.SendMessage(qn, []byte("extra")); err != nil {
		t.Fatalf("queue unusable after failed migration: %v", err)
	}
	sent["extra"] = true

	// Fault cleared: Rebalance converges the route with the ring.
	flaky.mu.Lock()
	flaky.errs = 0
	flaky.mu.Unlock()
	if err := r.Rebalance(); err != nil {
		t.Fatalf("rebalance after fault cleared: %v", err)
	}
	if got := r.Owners()[qn]; got != "s1" {
		t.Fatalf("owner after rebalance = %s, want s1", got)
	}

	// Every message — streamed early, left behind, or sent mid-failure —
	// arrives exactly-once-or-more.
	got := map[string]bool{}
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < len(sent) {
		if time.Now().After(deadline) {
			t.Fatalf("lost messages after retried migration: %d/%d", len(got), len(sent))
		}
		m, ok, err := r.ReceiveMessageWait(qn, time.Minute, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			got[string(m.Body)] = true
			_ = r.DeleteMessage(qn, m.ReceiptHandle)
		}
	}
}

// TestRemoveShardRefusals: topology guard rails.
func TestRemoveShardRefusals(t *testing.T) {
	r, _ := newTestRouter(t, 1)
	if err := r.RemoveShard("ghost"); !errors.Is(err, ErrNoSuchShard) {
		t.Errorf("remove unknown shard: %v", err)
	}
	if err := r.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveShard("s0"); !errors.Is(err, ErrNoShards) {
		t.Errorf("removing last shard with queues: %v", err)
	}
	if err := r.AddShard("s0", queue.NewService(queue.Config{})); !errors.Is(err, ErrShardExists) {
		t.Errorf("re-adding live shard id: %v", err)
	}
	if err := r.AddShard("bad~id", queue.NewService(queue.Config{})); !errors.Is(err, ErrBadShardID) {
		t.Errorf("bad shard id: %v", err)
	}
}
