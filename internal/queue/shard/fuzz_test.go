// Go native fuzz targets for the consistent-hash ring and the
// placement-group key derivation — the routing layer every consumer's
// correctness sits on. Run as tests they replay the seed corpus; CI
// additionally runs each under -fuzz for a short smoke window.
package shard

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// fuzzPool is the fixed shard-id vocabulary fuzzed op sequences draw
// from: big enough for interesting topologies, small enough that
// remove ops actually hit live shards.
var fuzzPool = [8]string{"fz0", "fz1", "fz2", "fz3", "fz4", "fz5", "fz6", "fz7"}

// applyOps interprets one fuzz byte per op: low bits pick the shard,
// the high bit picks add versus remove, and on add the middle nibble
// sets a weight in [0.25, 4] — so fuzzed topologies exercise weighted
// arcs, not just the uniform default. It returns the ring plus the
// membership and final weights implied by replaying the ops.
func applyOps(vnodes int, ops []byte) (*ring, map[string]bool, map[string]float64) {
	r := newRing(vnodes)
	members := map[string]bool{}
	weights := map[string]float64{}
	for _, op := range ops {
		id := fuzzPool[op&0x07]
		if op&0x80 == 0 {
			r.add(id)
			w := float64((op>>3)&0x0F+1) / 4
			r.setWeight(id, w)
			members[id] = true
			weights[id] = w
		} else {
			r.remove(id)
			delete(members, id)
			delete(weights, id)
		}
	}
	return r, members, weights
}

// FuzzRingRoute checks the three routing invariants under arbitrary
// add/remove sequences:
//
//  1. Every key routes to a live shard (never to a removed one, never
//     to nothing while members remain).
//  2. Routing is deterministic across ring rebuilds: a fresh ring built
//     from the final membership in any order agrees on every owner —
//     the property that lets independent processes route alike.
//  3. Grouped names co-route with their group key: the ring itself is
//     name-agnostic, so owner(DeriveGroup(name)) must be stable however
//     the name is decorated with group segments.
//  4. Sub-arc placement holds its contract on weighted rings: every
//     successor is a live member, the first min(k, members) successors
//     are pairwise distinct shards (the spread guarantee hot-group
//     splitting rests on), and subgroupIndex is a stable in-range
//     function of the name alone.
func FuzzRingRoute(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, "job-1/tasks")
	f.Add([]byte{0, 0x81, 1, 2, 0x82}, "job-2/monitor")
	f.Add([]byte{7, 6, 5, 0x87, 0x86}, "plain-queue")
	f.Add([]byte{0x38, 0x09, 0x7A, 3}, "weighted-arcs")
	f.Add([]byte{}, "empty-ring")
	f.Fuzz(func(t *testing.T, ops []byte, key string) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		r, members, weights := applyOps(16, ops)

		owner, ok := r.owner(key)
		if ok != (len(members) > 0) {
			t.Fatalf("owner ok=%v with %d members", ok, len(members))
		}
		if !ok {
			return
		}
		if !members[owner] {
			t.Fatalf("key %q routed to %q, not a live member of %v", key, owner, members)
		}

		// Rebuild from the final membership and weights, in two different
		// orders: independent processes must route alike however their
		// view of the topology was assembled.
		ids := make([]string, 0, len(members))
		for id := range members {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fwd := newRing(16)
		for _, id := range ids {
			fwd.add(id)
			fwd.setWeight(id, weights[id])
		}
		rev := newRing(16)
		for i := len(ids) - 1; i >= 0; i-- {
			rev.add(ids[i])
			rev.setWeight(ids[i], weights[ids[i]])
		}
		fo, _ := fwd.owner(key)
		ro, _ := rev.owner(key)
		if fo != owner || ro != owner {
			t.Fatalf("owner(%q) not deterministic across rebuilds: churned=%q sorted=%q reversed=%q",
				key, owner, fo, ro)
		}

		// A grouped decoration of the key routes with the key itself.
		grouped := key + "/tasks"
		if DeriveGroup(grouped) == key {
			if go1, _ := r.owner(DeriveGroup(grouped)); go1 != owner {
				t.Fatalf("grouped name %q routes to %q, its group key %q to %q", grouped, go1, key, owner)
			}
		}

		// Sub-arc derivation: in range, stable, and name-only.
		for _, k := range []int{2, 8, maxSubgroups} {
			i := subgroupIndex(grouped, k)
			if i < 0 || i >= k {
				t.Fatalf("subgroupIndex(%q, %d) = %d out of range", grouped, k, i)
			}
			if j := subgroupIndex(grouped, k); j != i {
				t.Fatalf("subgroupIndex(%q, %d) unstable: %d then %d", grouped, k, i, j)
			}
		}

		// The successor walk: sub-arc i of the key must land on a live
		// member, identically across rebuilds, and the first len(members)
		// sub-arcs must be pairwise distinct shards.
		distinct := map[string]bool{}
		for i := 0; i < len(members); i++ {
			s, sok := r.successor(key, i)
			if !sok || !members[s] {
				t.Fatalf("successor(%q, %d) = %q ok=%v, not a live member of %v", key, i, s, sok, members)
			}
			if fs, _ := fwd.successor(key, i); fs != s {
				t.Fatalf("successor(%q, %d) not deterministic across rebuilds: %q vs %q", key, i, s, fs)
			}
			if distinct[s] {
				t.Fatalf("successor(%q, %d) repeats shard %q — sub-arcs would collapse", key, i, s)
			}
			distinct[s] = true
		}
		// Index i wraps modulo the member count.
		if s, _ := r.successor(key, len(members)); s != owner {
			t.Fatalf("successor(%q, members) = %q, want wrap to owner %q", key, s, owner)
		}
	})
}

// FuzzPlacementGroups checks the group-derivation contract: two names
// with the same derived group always co-route, a well-formed
// "group/queue" name derives exactly its prefix, and derivation is
// stable (deriving twice changes nothing more).
func FuzzPlacementGroups(f *testing.F) {
	f.Add("job-1", "tasks", "monitor")
	f.Add("", "a", "b")
	f.Add("deep", "x/y", "z")
	f.Add("sl/ash", "t", "u")
	f.Fuzz(func(t *testing.T, group, qa, qb string) {
		r := newRing(16)
		for _, id := range fuzzPool {
			r.add(id)
		}
		na := group + "/" + qa
		nb := group + "/" + qb
		ga, gb := DeriveGroup(na), DeriveGroup(nb)
		// The routing contract: equal derived groups always co-route.
		if ga == gb {
			oa, _ := r.owner(ga)
			ob, _ := r.owner(gb)
			if oa != ob {
				t.Fatalf("same group %q routed to %q and %q", ga, oa, ob)
			}
		}
		// A well-formed "group/queue" name derives exactly its prefix —
		// so siblings under one group always co-route.
		if group != "" && !strings.Contains(group, "/") {
			if ga != group || gb != group {
				t.Fatalf("DeriveGroup(%q,%q) = %q,%q, want the prefix %q", na, nb, ga, gb, group)
			}
		}
		// Deriving a derived key is stable once no separator remains
		// (nested groups collapse to the outermost segment).
		if !strings.Contains(ga, "/") && DeriveGroup(ga) != ga {
			t.Fatalf("DeriveGroup not stable: %q -> %q", ga, DeriveGroup(ga))
		}
		// Ungrouped names are their own key.
		plain := strings.ReplaceAll(qa, "/", "_")
		if plain != "" {
			if got := DeriveGroup(plain); got != plain {
				t.Fatalf("ungrouped %q derived %q", plain, got)
			}
		}
	})
}

// TestFuzzSeedsPass replays a few structured cases through the full
// Router so the fuzz invariants are anchored to real routing behaviour,
// not just the ring in isolation.
func TestFuzzSeedsPass(t *testing.T) {
	r, _ := newTestRouter(t, 3)
	for i := 0; i < 8; i++ {
		for _, sfx := range []string{"tasks", "monitor"} {
			if err := r.CreateQueue(fmt.Sprintf("seed-%d/%s", i, sfx)); err != nil {
				t.Fatal(err)
			}
		}
	}
	owners := r.Owners()
	for i := 0; i < 8; i++ {
		a := owners[fmt.Sprintf("seed-%d/tasks", i)]
		b := owners[fmt.Sprintf("seed-%d/monitor", i)]
		if a == "" || a != b {
			t.Fatalf("seed-%d split across %q and %q", i, a, b)
		}
	}

	// Splitting re-derives per sub-arc: queues sharing a sub-arc index
	// still co-route, and merging restores full group co-location.
	if err := r.SplitGroup("seed-0", 4); err != nil {
		t.Fatal(err)
	}
	owners = r.Owners()
	ta, mo := owners["seed-0/tasks"], owners["seed-0/monitor"]
	if subgroupIndex("seed-0/tasks", 4) == subgroupIndex("seed-0/monitor", 4) && ta != mo {
		t.Fatalf("same sub-arc routed apart: tasks=%q monitor=%q", ta, mo)
	}
	if err := r.MergeGroup("seed-0"); err != nil {
		t.Fatal(err)
	}
	owners = r.Owners()
	if owners["seed-0/tasks"] != owners["seed-0/monitor"] {
		t.Fatalf("merge did not restore co-location: tasks=%q monitor=%q",
			owners["seed-0/tasks"], owners["seed-0/monitor"])
	}
}
