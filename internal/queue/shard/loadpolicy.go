package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/queue"
	"repro/internal/telemetry"
)

// This file closes the loop the broker already closes for worker
// fleets, on the queue tier itself: a router-side AutoscalePolicy that
// watches observed load (P95 over a sliding window of per-tick request
// rates, plus live backlog) and acts on the three levers the ring now
// has — splitting hot groups across sub-arcs, weighting arcs so
// Rebalance equalizes load instead of key space, and growing/shrinking
// the shard fleet from a registry of local-spawn or pre-provisioned
// backends. Decisions are scored (utilization gain vs migration cost
// vs fragmentation) rather than instantaneous-threshold triggers, and
// both cooldowns and hysteresis keep the topology from thrashing.

// ShardFactory creates a backend for a shard the autoscaler decided to
// add — typically an in-process *queue.Service in tests and benches,
// or a client dialing a freshly provisioned remote node in production.
type ShardFactory func(id string) (queue.API, error)

// ReserveShard is a pre-provisioned backend the autoscaler may bring
// onto the ring before it asks the factory for a new one — the "warm
// pool" pattern: capacity that is already paid for is used first.
type ReserveShard struct {
	ID      string
	Backend queue.API
}

// AutoscalePolicy tunes the shard fleet's load response. It is
// symmetric to the broker's worker-fleet AutoscalePolicy: a pure
// Decide over one observation, with zero values selecting defaults.
type AutoscalePolicy struct {
	// MinShards / MaxShards bound the fleet (defaults 1 / 8).
	MinShards int
	MaxShards int
	// TargetRatePerShard is the request rate one shard is provisioned
	// for; fleet utilization is totalRate/(shards·target). Default 1000.
	TargetRatePerShard float64
	// ScaleUpAt / ScaleDownAt are the utilization watermarks where
	// growing / shrinking starts being considered (defaults 0.8 / 0.3).
	// The scored trade-off below the watermarks still applies: a small
	// overshoot does not justify migrating a large backlog.
	ScaleUpAt   float64
	ScaleDownAt float64
	// UpCooldown / DownCooldown suppress repeat fleet changes (defaults
	// 10s / 30s). Down is stickier: shrink mistakes cost a migration to
	// undo, and a recent scale-up also resets the down cooldown.
	UpCooldown   time.Duration
	DownCooldown time.Duration
	// SplitRate / SplitBacklog mark a group hot: request rate above
	// SplitRate (default TargetRatePerShard/2) or backlog above
	// SplitBacklog (default 4096) doubles its sub-arc fan-out, up to
	// MaxSubgroups (default 8) and never past its queue count.
	SplitRate    float64
	SplitBacklog int64
	MaxSubgroups int
	// MergeFraction is the hysteresis band: a split group merges back
	// only when BOTH its rate and backlog fall below MergeFraction of
	// the split thresholds (default 0.25), so a group hovering at the
	// threshold does not split/merge every tick.
	MergeFraction float64
	// SplitCooldown suppresses further split/merge actions after one
	// fires (default 10s).
	SplitCooldown time.Duration
	// Window is how many per-tick rate samples the P95 load estimate
	// looks back over (default 10). Used by the Autoscaler runner when
	// building observations; Decide itself sees the finished estimate.
	Window int
	// UtilizationWeight, MigrationWeight, and FragmentationWeight score
	// the fleet-sizing trade-off (defaults 1 / 0.5 / 1): scaling up
	// must buy more utilization headroom than the migration disruption
	// costs, and scaling down must recover more idle capacity than the
	// retiring shard's arc costs to move.
	UtilizationWeight   float64
	MigrationWeight     float64
	FragmentationWeight float64
}

func (p AutoscalePolicy) withDefaults() AutoscalePolicy {
	if p.MinShards <= 0 {
		p.MinShards = 1
	}
	if p.MaxShards <= 0 {
		p.MaxShards = 8
	}
	if p.MaxShards < p.MinShards {
		p.MaxShards = p.MinShards
	}
	if p.TargetRatePerShard <= 0 {
		p.TargetRatePerShard = 1000
	}
	if p.ScaleUpAt <= 0 {
		p.ScaleUpAt = 0.8
	}
	if p.ScaleDownAt <= 0 {
		p.ScaleDownAt = 0.3
	}
	if p.UpCooldown <= 0 {
		p.UpCooldown = 10 * time.Second
	}
	if p.DownCooldown <= 0 {
		p.DownCooldown = 30 * time.Second
	}
	if p.SplitRate <= 0 {
		p.SplitRate = p.TargetRatePerShard / 2
	}
	if p.SplitBacklog <= 0 {
		p.SplitBacklog = 4096
	}
	if p.MaxSubgroups <= 0 {
		p.MaxSubgroups = 8
	}
	if p.MaxSubgroups > maxSubgroups {
		p.MaxSubgroups = maxSubgroups
	}
	if p.MergeFraction <= 0 {
		p.MergeFraction = 0.25
	}
	if p.SplitCooldown <= 0 {
		p.SplitCooldown = 10 * time.Second
	}
	if p.Window <= 0 {
		p.Window = 10
	}
	if p.UtilizationWeight <= 0 {
		p.UtilizationWeight = 1
	}
	if p.MigrationWeight <= 0 {
		p.MigrationWeight = 0.5
	}
	if p.FragmentationWeight <= 0 {
		p.FragmentationWeight = 1
	}
	return p
}

// ShardLoad is one on-ring shard's load estimate in an observation.
type ShardLoad struct {
	ID string
	// RatePerSec is the P95 of the shard's per-tick request rates over
	// the policy window — resistant to one quiet tick hiding a hot
	// shard. MinRate/MaxRate are the window extremes.
	RatePerSec       float64
	MinRate, MaxRate float64
	Backlog          int64
	Queues           int
	// Weight is the shard's current ring-arc weight.
	Weight float64
}

// GroupLoad is one placement group's load estimate in an observation.
type GroupLoad struct {
	Group            string
	RatePerSec       float64
	MinRate, MaxRate float64
	Backlog          int64
	Queues           int
	Subgroups        int
	Pinned           bool
}

// FleetObservation is one autoscaler tick's view of the sharded tier.
type FleetObservation struct {
	Now    time.Time
	Shards []ShardLoad
	Groups []GroupLoad
	// LastScaleUp / LastScaleDown / LastSplit are when the previous
	// actions of each kind fired (zero when none have).
	LastScaleUp, LastScaleDown, LastSplit time.Time
}

// FleetDecision is the policy's output for one tick: group splits and
// merges to apply, a fleet delta, and desired ring-arc weights. Reason
// explains the dominant action for operators and tests.
type FleetDecision struct {
	// Splits maps group → new sub-arc count (always > current).
	Splits map[string]int
	// Merges lists split groups to collapse back onto one arc.
	Merges []string
	// Delta is the fleet change: +1 adds a shard, -1 retires one.
	Delta int
	// Weights holds desired ring-arc weights that differ meaningfully
	// from the current ones (deadband applied); the runner sets them
	// and triggers one Rebalance.
	Weights map[string]float64
	Reason  string
}

// Decide computes one tick's actions. It is a pure function of its
// inputs — no clock, no router — so policies are testable (and the
// bench reproducible) without running a fleet.
func (p AutoscalePolicy) Decide(o FleetObservation) FleetDecision {
	p = p.withDefaults()
	fleet := len(o.Shards)
	d := FleetDecision{Reason: "steady"}
	if fleet == 0 {
		d.Reason = "no shards on ring"
		return d
	}
	var totalRate float64
	for _, s := range o.Shards {
		totalRate += s.RatePerSec
	}

	// Hot groups split, cool split groups merge — under one shared
	// cooldown so the topology changes at most one split-step per
	// window.
	if o.LastSplit.IsZero() || o.Now.Sub(o.LastSplit) >= p.SplitCooldown {
		for _, g := range o.Groups {
			if g.Pinned {
				continue
			}
			sub := g.Subgroups
			if sub < 1 {
				sub = 1
			}
			hot := g.RatePerSec > p.SplitRate || g.Backlog > p.SplitBacklog
			cool := g.RatePerSec < p.SplitRate*p.MergeFraction &&
				float64(g.Backlog) < float64(p.SplitBacklog)*p.MergeFraction
			switch {
			case hot && sub < p.MaxSubgroups && g.Queues > sub:
				// Double the fan-out: one decision halves the hot arc's
				// load instead of creeping up one sub-arc per window.
				k := sub * 2
				if k > p.MaxSubgroups {
					k = p.MaxSubgroups
				}
				if k > g.Queues {
					k = g.Queues
				}
				if k > sub {
					if d.Splits == nil {
						d.Splits = make(map[string]int)
					}
					d.Splits[g.Group] = k
					d.Reason = fmt.Sprintf("group %s hot (rate %.0f/s, backlog %d): split to %d sub-arcs", g.Group, g.RatePerSec, g.Backlog, k)
				}
			case cool && sub > 1:
				d.Merges = append(d.Merges, g.Group)
				d.Reason = fmt.Sprintf("group %s cooled (rate %.0f/s, backlog %d): merge", g.Group, g.RatePerSec, g.Backlog)
			}
		}
		sort.Strings(d.Merges)
	}

	// Fleet sizing: scored, not threshold-triggered. Growing buys
	// utilization headroom but costs moving ~1/(N+1) of the key space;
	// shrinking recovers idle capacity but costs moving the retiring
	// shard's whole arc. Either action must win its trade.
	util := totalRate / (float64(fleet) * p.TargetRatePerShard)
	upGain := (util - p.ScaleUpAt) * p.UtilizationWeight
	upCost := p.MigrationWeight / float64(fleet+1)
	downGain := (p.ScaleDownAt - util) * p.FragmentationWeight
	downCost := p.MigrationWeight / float64(fleet)
	switch {
	case fleet < p.MaxShards && upGain > upCost:
		if !o.LastScaleUp.IsZero() && o.Now.Sub(o.LastScaleUp) < p.UpCooldown {
			break // suppressed by cooldown; splits/merges still apply
		}
		d.Delta = 1
		d.Reason = fmt.Sprintf("utilization %.2f above %.2f (gain %.3f > cost %.3f): add shard", util, p.ScaleUpAt, upGain, upCost)
	case fleet > p.MinShards && downGain > downCost:
		last := o.LastScaleDown
		if o.LastScaleUp.After(last) {
			last = o.LastScaleUp // a fresh shard is not retired next tick
		}
		if !last.IsZero() && o.Now.Sub(last) < p.DownCooldown {
			break
		}
		d.Delta = -1
		d.Reason = fmt.Sprintf("utilization %.2f below %.2f (gain %.3f > cost %.3f): retire shard", util, p.ScaleDownAt, downGain, downCost)
	}

	// Weights: nudge each shard's arc toward equal LOAD. A shard
	// serving twice the mean rate gets roughly half the arc; the ratio
	// per tick is bounded and deadbanded so estimates converge instead
	// of oscillating.
	if fleet > 1 && totalRate > 0 {
		mean := totalRate / float64(fleet)
		for _, s := range o.Shards {
			rate := s.RatePerSec
			if rate < mean/8 {
				rate = mean / 8 // a silent shard grows its arc boundedly
			}
			desired := s.Weight * mean / rate
			// Bound the per-tick adjustment to 2x either way.
			if desired > s.Weight*2 {
				desired = s.Weight * 2
			}
			if desired < s.Weight/2 {
				desired = s.Weight / 2
			}
			desired = clampWeight(desired)
			// Deadband: within 25% of current is noise, not signal.
			if ratio := desired / s.Weight; ratio > 0.8 && ratio < 1.25 {
				continue
			}
			if d.Weights == nil {
				d.Weights = make(map[string]float64)
			}
			d.Weights[s.ID] = desired
		}
	}
	return d
}

// AutoscalerConfig wires a policy to a router and a supply of shards.
type AutoscalerConfig struct {
	Policy AutoscalePolicy
	// Reserve backends are brought onto the ring first, in order.
	Reserve []ReserveShard
	// Factory is asked for a fresh backend ("auto-0", "auto-1", …)
	// once the reserve is exhausted. Nil means the reserve is the whole
	// supply.
	Factory ShardFactory
	// Interval between ticks when Start is used (default 2s).
	Interval time.Duration
	// Metrics, when set, receives shard_autoscale_decisions{verdict}
	// counters and shard_fleet / shard_groups_split gauges.
	Metrics *telemetry.Registry
}

// AutoscaleStatus is a snapshot of the runner for admin surfaces.
type AutoscaleStatus struct {
	Running      bool
	Fleet        int
	Added        []string
	ReserveLeft  int
	LastTick     time.Time
	LastDecision FleetDecision
	LastError    string
}

// Autoscaler drives an AutoscalePolicy against a live Router: each
// tick samples Stats/GroupStats, differentiates the cumulative billed
// request counts into per-tick rates (the telemetry Rate window is
// wall-clock 10s — too coarse for policy decisions during fast
// benches), keeps a sliding window per shard and group, and applies
// the policy's decision. Tick is exported so tests and paperbench can
// drive it deterministically without the wall-clock loop.
type Autoscaler struct {
	r   *Router
	cfg AutoscalerConfig
	pol AutoscalePolicy

	mu           sync.Mutex
	reserve      []ReserveShard
	spawned      int
	added        []string // shards this autoscaler added; the only ones it may retire (LIFO)
	prevShardReq map[string]int64
	prevGroupReq map[string]int64
	prevTick     time.Time
	shardHist    map[string][]float64
	groupHist    map[string][]float64
	lastUp       time.Time
	lastDown     time.Time
	lastSplit    time.Time
	lastTick     time.Time
	lastDecision FleetDecision
	lastErr      error
	running      bool

	closing   chan struct{}
	closeOnce sync.Once
	loop      sync.WaitGroup
}

// NewAutoscaler binds a policy to a router. Call Start for the
// background loop, or Tick directly for deterministic control.
func NewAutoscaler(r *Router, cfg AutoscalerConfig) *Autoscaler {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	return &Autoscaler{
		r:            r,
		cfg:          cfg,
		pol:          cfg.Policy.withDefaults(),
		reserve:      append([]ReserveShard(nil), cfg.Reserve...),
		prevShardReq: make(map[string]int64),
		prevGroupReq: make(map[string]int64),
		shardHist:    make(map[string][]float64),
		groupHist:    make(map[string][]float64),
		closing:      make(chan struct{}),
	}
}

// Start launches the tick loop.
func (a *Autoscaler) Start() {
	a.mu.Lock()
	if a.running {
		a.mu.Unlock()
		return
	}
	a.running = true
	a.mu.Unlock()
	a.loop.Add(1)
	go func() {
		defer a.loop.Done()
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				a.Tick(now)
			case <-a.closing:
				return
			}
		}
	}()
}

// Close stops the tick loop and waits for it. The fleet is left as-is:
// shards the autoscaler added keep serving.
func (a *Autoscaler) Close() {
	a.closeOnce.Do(func() { close(a.closing) })
	a.loop.Wait()
	a.mu.Lock()
	a.running = false
	a.mu.Unlock()
}

// Tick observes, decides, and applies one policy round. The first tick
// only establishes baselines (rates need two cumulative samples).
func (a *Autoscaler) Tick(now time.Time) FleetDecision {
	stats := a.r.Stats()
	gstats := a.r.GroupStats()

	a.mu.Lock()
	first := a.prevTick.IsZero()
	dt := now.Sub(a.prevTick).Seconds()
	a.prevTick = now
	a.lastTick = now
	obs := FleetObservation{
		Now:           now,
		LastScaleUp:   a.lastUp,
		LastScaleDown: a.lastDown,
		LastSplit:     a.lastSplit,
	}
	liveShards := make(map[string]bool, len(stats))
	for _, s := range stats {
		liveShards[s.ID] = true
		var rate float64
		if prev, ok := a.prevShardReq[s.ID]; ok && dt > 0 {
			rate = float64(s.Requests-prev) / dt
		}
		a.prevShardReq[s.ID] = s.Requests
		a.shardHist[s.ID] = pushSample(a.shardHist[s.ID], rate, a.pol.Window)
		if !s.OnRing {
			continue // retired: reachable for receipts, not a sizing input
		}
		mn, mx := sampleBounds(a.shardHist[s.ID])
		obs.Shards = append(obs.Shards, ShardLoad{
			ID:         s.ID,
			RatePerSec: p95(a.shardHist[s.ID]),
			MinRate:    mn,
			MaxRate:    mx,
			Backlog:    s.Backlog,
			Queues:     s.Queues,
			Weight:     s.Weight,
		})
	}
	liveGroups := make(map[string]bool, len(gstats))
	for _, g := range gstats {
		liveGroups[g.Group] = true
		var rate float64
		if prev, ok := a.prevGroupReq[g.Group]; ok && dt > 0 {
			rate = float64(g.Requests-prev) / dt
		}
		a.prevGroupReq[g.Group] = g.Requests
		a.groupHist[g.Group] = pushSample(a.groupHist[g.Group], rate, a.pol.Window)
		mn, mx := sampleBounds(a.groupHist[g.Group])
		obs.Groups = append(obs.Groups, GroupLoad{
			Group:      g.Group,
			RatePerSec: p95(a.groupHist[g.Group]),
			MinRate:    mn,
			MaxRate:    mx,
			Backlog:    g.Backlog,
			Queues:     g.Queues,
			Subgroups:  g.Subgroups,
			Pinned:     g.Pinned,
		})
	}
	for id := range a.prevShardReq {
		if !liveShards[id] {
			delete(a.prevShardReq, id)
			delete(a.shardHist, id)
		}
	}
	for g := range a.prevGroupReq {
		if !liveGroups[g] {
			delete(a.prevGroupReq, g)
			delete(a.groupHist, g)
		}
	}
	a.mu.Unlock()

	if first {
		d := FleetDecision{Reason: "first tick: establishing rate baseline"}
		a.record(d, nil)
		return d
	}
	d := a.pol.Decide(obs)
	err := a.apply(now, d)
	a.record(d, err)
	return d
}

// apply executes a decision against the router: splits and merges
// first (they relieve pressure without new capacity), then the fleet
// delta, then weight nudges with one Rebalance to act on them.
func (a *Autoscaler) apply(now time.Time, d FleetDecision) error {
	var errs []error
	acted := false
	for _, g := range sortedKeys(d.Splits) {
		if err := a.r.SplitGroup(g, d.Splits[g]); err != nil {
			errs = append(errs, err)
			continue
		}
		a.countDecision("split")
		acted = true
		a.mu.Lock()
		a.lastSplit = now
		a.mu.Unlock()
	}
	for _, g := range d.Merges {
		if err := a.r.MergeGroup(g); err != nil {
			errs = append(errs, err)
			continue
		}
		a.countDecision("merge")
		acted = true
		a.mu.Lock()
		a.lastSplit = now
		a.mu.Unlock()
	}
	switch {
	case d.Delta > 0:
		for i := 0; i < d.Delta; i++ {
			id, b, err := a.nextShard()
			if err != nil {
				errs = append(errs, err)
				break
			}
			if err := a.r.AddShard(id, b); err != nil {
				errs = append(errs, err)
				break
			}
			a.countDecision("up")
			acted = true
			a.mu.Lock()
			a.added = append(a.added, id)
			a.lastUp = now
			a.mu.Unlock()
		}
	case d.Delta < 0:
		for i := 0; i < -d.Delta; i++ {
			a.mu.Lock()
			if len(a.added) == 0 {
				a.mu.Unlock()
				// Only shards this autoscaler added are retired: the
				// operator's base fleet is never shrunk from under them.
				break
			}
			id := a.added[len(a.added)-1]
			a.added = a.added[:len(a.added)-1]
			a.mu.Unlock()
			if err := a.r.RemoveShard(id); err != nil {
				errs = append(errs, err)
				a.mu.Lock()
				a.added = append(a.added, id)
				a.mu.Unlock()
				break
			}
			a.countDecision("down")
			acted = true
			a.mu.Lock()
			a.lastDown = now
			a.mu.Unlock()
		}
	}
	weightsChanged := false
	for _, id := range sortedKeys(d.Weights) {
		changed, err := a.r.SetShardWeight(id, d.Weights[id])
		if err != nil {
			errs = append(errs, err)
			continue
		}
		weightsChanged = weightsChanged || changed
	}
	if weightsChanged {
		if err := a.r.Rebalance(); err != nil {
			errs = append(errs, err)
		}
		a.countDecision("weight")
		acted = true
	}
	if !acted {
		a.countDecision("hold")
	}
	return errors.Join(errs...)
}

// nextShard supplies a backend for a scale-up: the warm reserve in
// order, then the factory with a monotonic "auto-N" id (shard ids are
// not reusable once retired — the old name may still hold straggler
// leases).
func (a *Autoscaler) nextShard() (string, queue.API, error) {
	a.mu.Lock()
	if len(a.reserve) > 0 {
		rs := a.reserve[0]
		a.reserve = a.reserve[1:]
		a.mu.Unlock()
		return rs.ID, rs.Backend, nil
	}
	n := a.spawned
	a.spawned++
	a.mu.Unlock()
	if a.cfg.Factory == nil {
		return "", nil, errors.New("shard: autoscaler shard supply exhausted (empty reserve, no factory)")
	}
	id := fmt.Sprintf("auto-%d", n)
	b, err := a.cfg.Factory(id)
	if err != nil {
		return "", nil, fmt.Errorf("shard: autoscaler factory for %s: %w", id, err)
	}
	if b == nil {
		return "", nil, fmt.Errorf("shard: autoscaler factory returned nil backend for %s", id)
	}
	return id, b, nil
}

func (a *Autoscaler) record(d FleetDecision, err error) {
	a.mu.Lock()
	a.lastDecision = d
	a.lastErr = err
	a.mu.Unlock()
	if a.cfg.Metrics != nil {
		a.cfg.Metrics.Gauge("shard_fleet").Set(int64(len(a.r.Shards())))
		a.cfg.Metrics.Gauge("shard_groups_split").Set(int64(len(a.r.Splits())))
	}
}

func (a *Autoscaler) countDecision(verdict string) {
	if a.cfg.Metrics != nil {
		a.cfg.Metrics.Counter(telemetry.Label("shard_autoscale_decisions", "verdict", verdict)).Add(1)
	}
}

// Status snapshots the runner for /admin/shards.
func (a *Autoscaler) Status() AutoscaleStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := AutoscaleStatus{
		Running:      a.running,
		Added:        append([]string(nil), a.added...),
		ReserveLeft:  len(a.reserve),
		LastTick:     a.lastTick,
		LastDecision: a.lastDecision,
	}
	if a.lastErr != nil {
		st.LastError = a.lastErr.Error()
	}
	st.Fleet = len(a.r.Shards())
	return st
}

// pushSample appends to a bounded sliding window.
func pushSample(hist []float64, v float64, window int) []float64 {
	hist = append(hist, v)
	if len(hist) > window {
		hist = hist[len(hist)-window:]
	}
	return hist
}

// p95 is the 95th-percentile sample (0 for an empty window). For the
// short windows the policy uses this lands on the max or second-max —
// the load estimate a capacity decision should key on.
func p95(hist []float64) float64 {
	if len(hist) == 0 {
		return 0
	}
	s := append([]float64(nil), hist...)
	sort.Float64s(s)
	i := (len(s)*95 + 99) / 100
	if i > len(s) {
		i = len(s)
	}
	return s[i-1]
}

func sampleBounds(hist []float64) (min, max float64) {
	for i, v := range hist {
		if i == 0 || v < min {
			min = v
		}
		if i == 0 || v > max {
			max = v
		}
	}
	return min, max
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
