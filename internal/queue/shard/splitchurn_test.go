// Stress test for hot-group splitting under live traffic: producers
// and consumers hammer one placement group while the topology churns
// through split → weight change → rebalance → merge cycles. The
// at-least-once contract must hold end to end — every body consumed,
// the namespace drained to empty — with the group's queues bouncing
// between sub-arcs the whole time.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/queue"
)

func TestSplitMergeChurnUnderLoad(t *testing.T) {
	r := NewRouter(Config{ForwardInterval: time.Millisecond})
	defer r.Close()
	for i := 0; i < 3; i++ {
		if err := r.AddShard(fmt.Sprintf("s%d", i), queue.NewService(queue.Config{Seed: int64(i + 1)})); err != nil {
			t.Fatal(err)
		}
	}
	const queues, perQueue = 12, 40
	names := make([]string, queues)
	for i := range names {
		names[i] = fmt.Sprintf("churn/q%d", i)
		if err := r.CreateQueue(names[i]); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	got := make(map[string]bool)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for _, qn := range names {
		qn := qn
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok, err := r.ReceiveMessageWait(qn, 10*time.Second, 10*time.Millisecond)
				if err != nil {
					return // queue deleted at teardown
				}
				if ok {
					mu.Lock()
					got[string(m.Body)] = true
					mu.Unlock()
					if err := r.DeleteMessage(qn, m.ReceiptHandle); err != nil &&
						!errors.Is(err, queue.ErrStaleReceipt) {
						t.Errorf("delete on %s: %v", qn, err)
					}
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	var prod sync.WaitGroup
	for _, qn := range names {
		qn := qn
		prod.Add(1)
		go func() {
			defer prod.Done()
			for k := 0; k < perQueue; k++ {
				if _, err := r.SendMessage(qn, []byte(fmt.Sprintf("%s/m%d", qn, k))); err != nil {
					t.Errorf("send %s: %v", qn, err)
					return
				}
			}
		}()
	}

	// Topology churn while traffic flows: widen the split step by step,
	// reweight arcs (each Rebalance inside SetShardWeight-then-Rebalance
	// can move sub-arcs), and merge back — twice over.
	for cycle := 0; cycle < 2; cycle++ {
		for _, k := range []int{2, 4, 8} {
			if err := r.SplitGroup("churn", k); err != nil {
				t.Fatalf("split to %d: %v", k, err)
			}
		}
		for i := 0; i < 3; i++ {
			w := 0.5 + float64((cycle+i)%3) // 0.5, 1.5, 2.5 rotating
			if _, err := r.SetShardWeight(fmt.Sprintf("s%d", i), w); err != nil {
				t.Fatalf("set weight s%d: %v", i, err)
			}
		}
		if err := r.Rebalance(); err != nil {
			t.Fatalf("rebalance cycle %d: %v", cycle, err)
		}
		if err := r.MergeGroup("churn"); err != nil {
			t.Fatalf("merge cycle %d: %v", cycle, err)
		}
	}
	prod.Wait()

	// Every body must surface despite the churn.
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == queues*perQueue {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lost messages under split/merge churn: consumed %d/%d unique bodies", n, queues*perQueue)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// After the final merge the group is whole again: co-located and
	// drained to zero everywhere (deletes landed, no straggler copies).
	if splits := r.Splits(); len(splits) != 0 {
		t.Fatalf("splits left after merges: %v", splits)
	}
	owners := r.Owners()
	for _, qn := range names[1:] {
		if owners[qn] != owners[names[0]] {
			t.Fatalf("group not co-located after merge: %s on %s, %s on %s",
				names[0], owners[names[0]], qn, owners[qn])
		}
	}
	for _, qn := range names {
		ok := false
		for start := time.Now(); time.Since(start) < 5*time.Second; {
			v, inf, err := r.ApproximateCount(qn)
			if err != nil {
				t.Fatalf("count %s: %v", qn, err)
			}
			if v == 0 && inf == 0 {
				ok = true
				break
			}
			// Residual redeliveries from at-least-once forwarding: drain.
			if m, mOk, _ := r.ReceiveMessage(qn, time.Minute); mOk {
				_ = r.DeleteMessage(qn, m.ReceiptHandle)
			}
		}
		if !ok {
			v, inf, _ := r.ApproximateCount(qn)
			t.Errorf("%s never drained: %d visible, %d in flight", qn, v, inf)
		}
	}
}
