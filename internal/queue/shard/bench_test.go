package shard

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/queue"
)

// BenchmarkShardRingOwner measures the routing decision itself: one
// binary search over the vnode points.
func BenchmarkShardRingOwner(b *testing.B) {
	r := ringWith(64, "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7")
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("job-%d-tasks", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.owner(keys[i%len(keys)]); !ok {
			b.Fatal("no owner")
		}
	}
}

// BenchmarkShardRouterCycle measures the router's added cost on a full
// send→receive→delete cycle against an uncontended local shard.
func BenchmarkShardRouterCycle(b *testing.B) {
	r := NewRouter(Config{})
	defer r.Close()
	for i := 0; i < 4; i++ {
		if err := r.AddShard(fmt.Sprintf("s%d", i), queue.NewService(queue.Config{Seed: int64(i + 1)})); err != nil {
			b.Fatal(err)
		}
	}
	if err := r.CreateQueue("bench"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.SendMessage("bench", []byte("task")); err != nil {
			b.Fatal(err)
		}
		m, ok, err := r.ReceiveMessage("bench", time.Hour)
		if err != nil || !ok {
			b.Fatal(err)
		}
		if err := r.DeleteMessage("bench", m.ReceiptHandle); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardRebalance measures a topology change: 64 empty queues,
// one shard added, migrations included.
func BenchmarkShardRebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := NewRouter(Config{})
		for s := 0; s < 4; s++ {
			if err := r.AddShard(fmt.Sprintf("s%d", s), queue.NewService(queue.Config{Seed: int64(s + 1)})); err != nil {
				b.Fatal(err)
			}
		}
		for q := 0; q < 64; q++ {
			if err := r.CreateQueue(fmt.Sprintf("q%d", q)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := r.AddShard("s4", queue.NewService(queue.Config{Seed: 99})); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		r.Close()
		b.StartTimer()
	}
}
