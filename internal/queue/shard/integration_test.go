// Integration: a broker job runs unmodified against a 4-shard router —
// the consumers' acceptance criterion for the sharded queue front. The
// job's task, monitor, and dead-letter queues land on whichever shards
// the ring picks, workers lease and acknowledge through wrapped
// receipts, and a fifth shard joining mid-job migrates live queues
// without the broker noticing.
package shard_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/broker"
	"repro/internal/classiccloud"
	"repro/internal/queue"
	"repro/internal/queue/shard"
	"repro/internal/workload"
)

func TestBrokerJobThroughShardedQueue(t *testing.T) {
	router := shard.NewRouter(shard.Config{ForwardInterval: 2 * time.Millisecond})
	defer router.Close()
	for i := 0; i < 4; i++ {
		if err := router.AddShard(fmt.Sprintf("s%d", i), queue.NewService(queue.Config{Seed: int64(i + 1)})); err != nil {
			t.Fatal(err)
		}
	}
	env := classiccloud.Env{
		Blob:  blob.NewStore(blob.Config{}),
		Queue: router,
	}
	b := broker.New(broker.Config{
		Env:                env,
		WorkersPerInstance: 2,
		VisibilityTimeout:  600 * time.Millisecond,
		TickInterval:       15 * time.Millisecond,
		Autoscale: broker.AutoscalePolicy{
			MinInstances:       1,
			MaxInstances:       4,
			BacklogPerInstance: 16,
			ScaleDownCooldown:  60 * time.Millisecond,
		},
	})
	defer b.Close()

	const tasks = 48
	files := make(map[string][]byte, tasks)
	for i := 0; i < tasks; i++ {
		doc, err := workload.Cap3File(int64(i+1), 40, 1200)
		if err != nil {
			t.Fatal(err)
		}
		files[fmt.Sprintf("region%03d.fsa", i)] = doc
	}
	j, err := b.Submit(broker.JobRequest{App: "cap3", Files: files})
	if err != nil {
		t.Fatal(err)
	}

	// Grow the ring while workers hold live leases: task/monitor queues
	// may migrate mid-job and everything must still complete.
	time.Sleep(50 * time.Millisecond)
	if err := router.AddShard("s4", queue.NewService(queue.Config{Seed: 5})); err != nil {
		t.Fatal(err)
	}

	if err := j.Wait(60 * time.Second); err != nil {
		t.Fatalf("job did not complete through the sharded queue: %v", err)
	}
	st := j.Status()
	if st.Done != tasks || st.Dead != 0 {
		t.Fatalf("done=%d dead=%d, want %d/0", st.Done, st.Dead, tasks)
	}
	// Billing attribution still works per queue through the router.
	cr := j.CostReport()
	if cr.QueueRequests <= 0 {
		t.Errorf("cost report billed %d queue requests through the router", cr.QueueRequests)
	}
}
