package shard

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/queue"
)

// newTestRouter builds a router over n fresh local services.
func newTestRouter(t *testing.T, n int) (*Router, []*queue.Service) {
	t.Helper()
	r := NewRouter(Config{ForwardInterval: 2 * time.Millisecond})
	t.Cleanup(r.Close)
	svcs := make([]*queue.Service, n)
	for i := range svcs {
		svcs[i] = queue.NewService(queue.Config{Seed: int64(i + 1)})
		if err := r.AddShard(fmt.Sprintf("s%d", i), svcs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return r, svcs
}

// TestRouterRoundTrip drives the full message lifecycle through a
// 4-shard router: the surface behaves exactly like one service.
func TestRouterRoundTrip(t *testing.T) {
	r, _ := newTestRouter(t, 4)
	const queues = 16
	for i := 0; i < queues; i++ {
		if err := r.CreateQueue(fmt.Sprintf("q%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(r.ListQueues()); got != queues {
		t.Fatalf("ListQueues = %d names", got)
	}
	// Queues actually spread over shards.
	used := map[string]bool{}
	for _, owner := range r.Owners() {
		used[owner] = true
	}
	if len(used) < 2 {
		t.Errorf("16 queues all landed on %d shard(s)", len(used))
	}
	for i := 0; i < queues; i++ {
		qn := fmt.Sprintf("q%d", i)
		body := fmt.Sprintf("task-%d", i)
		if _, err := r.SendMessage(qn, []byte(body)); err != nil {
			t.Fatal(err)
		}
		m, ok, err := r.ReceiveMessage(qn, time.Minute)
		if err != nil || !ok {
			t.Fatalf("receive %s: ok=%v err=%v", qn, ok, err)
		}
		if string(m.Body) != body {
			t.Fatalf("got body %q want %q", m.Body, body)
		}
		if err := r.DeleteMessage(qn, m.ReceiptHandle); err != nil {
			t.Fatalf("delete %s: %v", qn, err)
		}
		if v, inf, _ := r.ApproximateCount(qn); v != 0 || inf != 0 {
			t.Fatalf("%s not empty after delete: %d,%d", qn, v, inf)
		}
	}
}

// TestRouterBatchAndVisibility exercises batch APIs and lease handling
// through the router.
func TestRouterBatchAndVisibility(t *testing.T) {
	r, _ := newTestRouter(t, 3)
	if err := r.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	bodies := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	if _, err := r.SendMessageBatch("q", bodies); err != nil {
		t.Fatal(err)
	}
	msgs, err := r.ReceiveMessageBatch("q", time.Minute, queue.MaxBatch, 0)
	if err != nil || len(msgs) != 3 {
		t.Fatalf("batch receive: %d msgs, %v", len(msgs), err)
	}
	// Shrink one lease to zero: the message comes back.
	if err := r.ChangeVisibility("q", msgs[0].ReceiptHandle, 0); err != nil {
		t.Fatal(err)
	}
	if m, ok, _ := r.ReceiveMessage("q", time.Minute); !ok || m.ID != msgs[0].ID {
		t.Fatalf("released message not redelivered (ok=%v)", ok)
	}
	receipts := []string{msgs[1].ReceiptHandle, msgs[2].ReceiptHandle, "bogus"}
	results, err := r.DeleteMessageBatch("q", receipts)
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != nil || results[1] != nil {
		t.Errorf("valid receipts errored: %v", results[:2])
	}
	if !errors.Is(results[2], queue.ErrStaleReceipt) {
		t.Errorf("bogus receipt: %v", results[2])
	}
}

// TestRouterSentinels: the router reports the same sentinels a single
// service would, and distinguishes deleted queues from stale receipts.
func TestRouterSentinels(t *testing.T) {
	r, _ := newTestRouter(t, 2)
	if _, err := r.SendMessage("missing", nil); !errors.Is(err, queue.ErrNoSuchQueue) {
		t.Errorf("send to missing queue: %v", err)
	}
	if err := r.CreateQueue(""); !errors.Is(err, queue.ErrEmptyQueueName) {
		t.Errorf("create empty name: %v", err)
	}
	if err := r.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateQueue("q"); !errors.Is(err, queue.ErrQueueExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if err := r.DeleteMessage("q", "not-wrapped"); !errors.Is(err, queue.ErrStaleReceipt) {
		t.Errorf("unroutable receipt: %v", err)
	}
	if err := r.DeleteMessage("q", "ghost~q-1#r1"); !errors.Is(err, queue.ErrStaleReceipt) {
		t.Errorf("receipt from unknown shard: %v", err)
	}
	if err := r.DeleteQueue("q"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteQueue("q"); !errors.Is(err, queue.ErrNoSuchQueue) {
		t.Errorf("double delete: %v", err)
	}
	if _, _, err := r.ReceiveMessage("q", 0); !errors.Is(err, queue.ErrNoSuchQueue) {
		t.Errorf("receive from deleted queue: %v", err)
	}
	empty := NewRouter(Config{})
	defer empty.Close()
	if err := empty.CreateQueue("q"); !errors.Is(err, ErrNoShards) {
		t.Errorf("create with no shards: %v", err)
	}
}

// TestRouterLongPollWakeup: a receiver blocked through the router wakes
// when a send lands on the owning shard.
func TestRouterLongPollWakeup(t *testing.T) {
	r, _ := newTestRouter(t, 4)
	if err := r.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	got := make(chan queue.Message, 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		m, ok, err := r.ReceiveMessageWait("q", time.Minute, 5*time.Second)
		if err == nil && ok {
			got <- m
		}
	}()
	<-ready
	time.Sleep(2 * time.Millisecond) // let the receiver block on the shard
	if _, err := r.SendMessage("q", []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Body) != "wake" {
			t.Errorf("woke with %q", m.Body)
		}
		if err := r.DeleteMessage("q", m.ReceiptHandle); err != nil {
			t.Errorf("delete after wakeup: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("long poll through the router never woke")
	}
}

// TestRouterBilling: the router attributes one request per routed call
// per queue, like a single service, and shard stats expose the
// backends' own counters.
func TestRouterBilling(t *testing.T) {
	r, _ := newTestRouter(t, 2)
	if err := r.CreateQueue("q"); err != nil { // 1 request
		t.Fatal(err)
	}
	base := r.APIRequestsFor("q")
	if _, err := r.SendMessage("q", []byte("x")); err != nil { // +1
		t.Fatal(err)
	}
	m, _, err := r.ReceiveMessage("q", time.Minute) // +1
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteMessage("q", m.ReceiptHandle); err != nil { // +1
		t.Fatal(err)
	}
	if got := r.APIRequestsFor("q") - base; got != 3 {
		t.Errorf("billed %d requests for send/receive/delete, want 3", got)
	}
	var shardReq int64
	for _, st := range r.Stats() {
		shardReq += st.Requests
	}
	if shardReq < 4 {
		t.Errorf("shard-side requests = %d, want ≥4", shardReq)
	}
}

// TestRouterRemoteShard: a shard reached through the HTTP client
// behaves like a local one — the sentinel mapping keeps the router's
// wrong-shard/deleted distinction working over the wire.
func TestRouterRemoteShard(t *testing.T) {
	remote := queue.NewService(queue.Config{Seed: 7})
	srv := httptest.NewServer(&queue.HTTPHandler{Service: remote})
	defer srv.Close()

	r := NewRouter(Config{})
	defer r.Close()
	if err := r.AddShard("local", queue.NewService(queue.Config{Seed: 8})); err != nil {
		t.Fatal(err)
	}
	if err := r.AddShard("remote", &queue.HTTPClient{BaseURL: srv.URL}); err != nil {
		t.Fatal(err)
	}
	// Create queues until one lands on the remote shard.
	var remoteQueue string
	for i := 0; i < 64 && remoteQueue == ""; i++ {
		qn := fmt.Sprintf("q%d", i)
		if err := r.CreateQueue(qn); err != nil {
			t.Fatal(err)
		}
		if r.Owners()[qn] == "remote" {
			remoteQueue = qn
		}
	}
	if remoteQueue == "" {
		t.Fatal("no queue landed on the remote shard")
	}
	if _, err := r.SendMessage(remoteQueue, []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := remote.ApproximateCount(remoteQueue); v != 1 {
		t.Fatalf("remote service did not receive the message (visible=%d)", v)
	}
	m, ok, err := r.ReceiveMessage(remoteQueue, time.Minute)
	if err != nil || !ok {
		t.Fatalf("receive via remote shard: ok=%v err=%v", ok, err)
	}
	if err := r.DeleteMessage(remoteQueue, m.ReceiptHandle); err != nil {
		t.Fatalf("delete via remote shard: %v", err)
	}
	if err := r.DeleteMessage(remoteQueue, m.ReceiptHandle); !errors.Is(err, queue.ErrStaleReceipt) {
		t.Errorf("stale delete over the wire: %v", err)
	}
}
