package shard

import (
	"fmt"
	"testing"
)

func ringWith(vnodes int, ids ...string) *ring {
	r := newRing(vnodes)
	for _, id := range ids {
		r.add(id)
	}
	return r
}

// TestRingDeterminism: two rings built from the same members — in any
// order — agree on every owner, so independent processes route alike.
func TestRingDeterminism(t *testing.T) {
	a := ringWith(64, "s0", "s1", "s2", "s3")
	b := ringWith(64, "s3", "s1", "s0", "s2")
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("job-%d-tasks", i)
		ao, _ := a.owner(key)
		bo, _ := b.owner(key)
		if ao != bo {
			t.Fatalf("owner(%q) differs: %s vs %s", key, ao, bo)
		}
	}
}

// TestRingBalance: with virtual nodes, no shard owns a wildly
// disproportionate share of 1000 queues.
func TestRingBalance(t *testing.T) {
	r := ringWith(64, "s0", "s1", "s2", "s3")
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		o, ok := r.owner(fmt.Sprintf("job-%d-tasks", i))
		if !ok {
			t.Fatal("no owner")
		}
		counts[o]++
	}
	for id, n := range counts {
		if n < 100 || n > 450 {
			t.Errorf("shard %s owns %d/1000 queues — ring badly balanced: %v", id, n, counts)
		}
	}
}

// TestRingRebalanceBound: adding a shard to an N-shard ring moves only
// queues that land on the new shard, and not many more than K/(N+1).
func TestRingRebalanceBound(t *testing.T) {
	const keys, n = 1000, 4
	r := ringWith(64, "s0", "s1", "s2", "s3")
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("job-%d-tasks", i)
		before[k], _ = r.owner(k)
	}
	r.add("s4")
	moved := 0
	for k, old := range before {
		now, _ := r.owner(k)
		if now == old {
			continue
		}
		moved++
		if now != "s4" {
			t.Errorf("key %q moved %s→%s, not to the new shard", k, old, now)
		}
	}
	// Expectation is keys/(n+1) = 200; allow 2x slack for hash variance.
	if moved == 0 || moved > 2*keys/(n+1) {
		t.Errorf("adding 1 shard to %d moved %d/%d queues (expected ≈%d)", n, moved, keys, keys/(n+1))
	}
}

// TestRingRemoveRestores: removing the shard just added restores every
// prior assignment — membership alone defines the mapping.
func TestRingRemoveRestores(t *testing.T) {
	r := ringWith(64, "s0", "s1", "s2")
	before := make(map[string]string)
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("q%d", i)
		before[k], _ = r.owner(k)
	}
	r.add("s3")
	r.remove("s3")
	for k, old := range before {
		if now, _ := r.owner(k); now != old {
			t.Fatalf("owner(%q) = %s after add+remove, was %s", k, now, old)
		}
	}
	if _, ok := ringWith(64).owner("q"); ok {
		t.Error("empty ring claimed an owner")
	}
}
