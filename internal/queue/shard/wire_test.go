// Mixed-transport topology: a router whose shards speak different
// transports — one plain HTTP/JSON node, one node advertising the
// binary wire protocol — must migrate queues between them in both
// directions with zero message loss and delivery counts preserved.
// The wire-backed shard exercises the batched transfer frames and the
// batched drain receive; the HTTP shard proves the transports compose.
package shard_test

import (
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/queue"
	"repro/internal/queue/shard"
	"repro/internal/queue/wire"
)

func TestMigrationAcrossMixedTransports(t *testing.T) {
	const token = "transfer-secret"

	// Shard 1: a queue node reachable only over HTTP/JSON.
	svcHTTP := queue.NewService(queue.Config{Seed: 1})
	hsHTTP := httptest.NewServer(&queue.HTTPHandler{Service: svcHTTP, AdminToken: token})
	defer hsHTTP.Close()
	backendHTTP := &queue.HTTPClient{BaseURL: hsHTTP.URL, AdminToken: token}

	// Shard 2: a queue node serving both faces and advertising its
	// wire listener through GET /wire.
	svcWire := queue.NewService(queue.Config{Seed: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := &wire.Server{Service: svcWire, AdminToken: token}
	go ws.Serve(ln)
	defer ws.Close()
	hsWire := httptest.NewServer(&queue.HTTPHandler{Service: svcWire, AdminToken: token, WireAddr: ln.Addr().String()})
	defer hsWire.Close()

	// Upgrade to the wire face exactly the way cmd/queuerouter does:
	// probe the advertisement, keep HTTP as the fallback.
	waddr, ok := wire.DiscoverAddr(hsWire.URL)
	if !ok || waddr != ln.Addr().String() {
		t.Fatalf("DiscoverAddr = %q, %v; want %q", waddr, ok, ln.Addr().String())
	}
	backendWire := wire.Dial(waddr, wire.Options{
		AdminToken: token,
		Fallback:   &queue.HTTPClient{BaseURL: hsWire.URL, AdminToken: token},
	})
	defer backendWire.Close()

	router := shard.NewRouter(shard.Config{ForwardInterval: 2 * time.Millisecond})
	defer router.Close()
	if err := router.AddShard("http-node", backendHTTP); err != nil {
		t.Fatal(err)
	}
	if err := router.AddShard("wire-node", backendWire); err != nil {
		t.Fatal(err)
	}

	// Six placement groups, three messages each; stamp one delivery on
	// one message per queue so count preservation is observable after
	// the queue crosses transports.
	const queues, perQueue = 6, 3
	qname := func(i int) string { return fmt.Sprintf("g%d/tasks", i) }
	for i := 0; i < queues; i++ {
		if err := router.CreateQueue(qname(i)); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < perQueue; j++ {
			if _, err := router.SendMessage(qname(i), []byte(fmt.Sprintf("q%d-m%d", i, j))); err != nil {
				t.Fatal(err)
			}
		}
		m, ok, err := router.ReceiveMessage(qname(i), time.Minute)
		if err != nil || !ok {
			t.Fatalf("stamp receive on %s: ok=%v err=%v", qname(i), ok, err)
		}
		if err := router.ChangeVisibility(qname(i), m.ReceiptHandle, 0); err != nil {
			t.Fatalf("release stamp on %s: %v", qname(i), err)
		}
	}

	depth := func(svc *queue.Service) int {
		total := 0
		for _, name := range svc.ListQueues() {
			v, f, err := svc.QueueDepth(name)
			if err != nil {
				t.Fatal(err)
			}
			total += v + f
		}
		return total
	}
	if depth(svcHTTP) == 0 || depth(svcWire) == 0 {
		t.Fatalf("placement did not split across shards (http=%d wire=%d) — pick different group names", depth(svcHTTP), depth(svcWire))
	}

	// Drain the wire shard: its queues stream out through the wire
	// client's batched receive into the HTTP node's transfer endpoint.
	if err := router.RemoveShard("wire-node"); err != nil {
		t.Fatal(err)
	}
	if got := depth(svcHTTP); got != queues*perQueue {
		t.Fatalf("after removing the wire shard the HTTP node holds %d messages, want %d", got, queues*perQueue)
	}
	if got := depth(svcWire); got != 0 {
		t.Fatalf("wire node still holds %d messages after drain", got)
	}

	// Bring the wire shard back under a fresh id (retired ids stay
	// registered so old receipts keep resolving): rebalancing streams
	// queues the other way, through the wire transfer opcode (batched
	// frames).
	if err := router.AddShard("wire-node-2", backendWire); err != nil {
		t.Fatal(err)
	}
	if got := depth(svcHTTP) + depth(svcWire); got != queues*perQueue {
		t.Fatalf("after re-adding the wire shard %d messages exist, want %d", got, queues*perQueue)
	}
	if depth(svcWire) == 0 {
		t.Fatal("no queue migrated back to the wire shard")
	}

	// Zero loss, exact counts: every queue drains exactly its three
	// distinct bodies through the router, the stamped message reports
	// its delivery history across two migrations, and nothing is left.
	for i := 0; i < queues; i++ {
		bodies := map[string]int{}
		stamped := 0
		for j := 0; j < perQueue; j++ {
			m, ok, err := router.ReceiveMessageWait(qname(i), time.Minute, 2*time.Second)
			if err != nil || !ok {
				t.Fatalf("final drain %s #%d: ok=%v err=%v", qname(i), j, ok, err)
			}
			bodies[string(m.Body)]++
			switch m.Receives {
			case 2:
				stamped++
			case 1:
			default:
				t.Fatalf("message %q has Receives=%d after two migrations, want 1 or 2", m.Body, m.Receives)
			}
			if err := router.DeleteMessage(qname(i), m.ReceiptHandle); err != nil {
				t.Fatalf("final delete %s: %v", qname(i), err)
			}
		}
		if len(bodies) != perQueue {
			t.Fatalf("queue %s drained %d distinct bodies, want %d: %v", qname(i), len(bodies), perQueue, bodies)
		}
		if stamped != 1 {
			t.Fatalf("queue %s: %d messages carry the migration-surviving delivery stamp, want exactly 1", qname(i), stamped)
		}
		if _, ok, err := router.ReceiveMessage(qname(i), time.Minute); ok || err != nil {
			t.Fatalf("queue %s not empty after drain (ok=%v err=%v)", qname(i), ok, err)
		}
	}

	// The privileged path was genuinely exercised over the wire: the
	// wire node billed transfer traffic when queues streamed back in.
	if errors.Is(err, nil) && svcWire.APIRequests() == 0 {
		t.Fatal("wire node billed no requests — migrations did not touch it")
	}
}
