package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/queue"
	"repro/internal/telemetry"
)

// Errors returned by the router itself; data-plane calls return the
// queue package's sentinels so consumers cannot tell a router from a
// single service.
var (
	ErrNoShards    = errors.New("shard: no shards registered")
	ErrShardExists = errors.New("shard: shard id already registered")
	ErrNoSuchShard = errors.New("shard: no such shard")
	ErrBadShardID  = errors.New("shard: shard id must be non-empty and must not contain '~'")
	// ErrBadGroup rejects an explicit placement group containing the
	// group separator: "job-7/tasks" as a group would hash the literal
	// string while the group's own queues hash "job-7", silently
	// breaking the co-location the caller asked for.
	ErrBadGroup = errors.New("shard: placement group must not contain '/'")
	// ErrGroupPinned rejects a split of a group that opted into strict
	// co-location (PinGroup): jobs whose correctness depends on all
	// queues sharing one shard must never be spread by the load policy.
	ErrGroupPinned = errors.New("shard: placement group is pinned to one shard")
	// ErrBadSplit bounds the sub-arc count: zero or negative is
	// meaningless and an absurdly high k would shred a group finer than
	// its queue count for no balance gain.
	ErrBadSplit = fmt.Errorf("shard: subgroup count must be in [1, %d]", maxSubgroups)
)

// maxSubgroups caps how many sub-arcs a split may spread a group over.
// A group rarely has more queues than this; past it the sub-arcs are
// mostly empty and every topology sweep pays for them.
const maxSubgroups = 64

// receiptSep joins the issuing shard's id to a receipt handle. Receipts
// must route to the shard that issued the lease — not the queue's
// current owner — so acknowledgements keep working while a queue
// migrates away from in-flight messages.
const receiptSep = "~"

// groupSep splits a queue name into its placement-group key and the
// queue's own name: "job-7/tasks" belongs to group "job-7".
const groupSep = "/"

// DeriveGroup returns the placement-group key a queue name implies:
// the segment before the first '/', or the whole name for an ungrouped
// name. The ring hashes this key instead of the full name, so every
// queue of one group — a job's task, monitor, and dead-letter queues —
// lands on the same shard and the job's queue traffic never crosses
// shards. An explicit group set with Router.Regroup overrides the
// derived one.
func DeriveGroup(name string) string {
	if i := strings.Index(name, groupSep); i > 0 {
		return name[:i]
	}
	return name
}

// effectiveGroup is the single definition of a queue's ring key: the
// route's explicit group when set, else the name-derived one. Every
// placement computation must agree on this rule.
func effectiveGroup(group, name string) string {
	if group != "" {
		return group
	}
	return DeriveGroup(name)
}

// subgroupIndex deterministically assigns a queue to one of k sub-arcs
// by hashing its full name. The salt keeps the assignment independent
// of the ring's own hash of the group key, and hashing the NAME (not
// the group) is what spreads a hot group: all of the group's queues
// share one group key but land on k different sub-arcs. The mapping
// depends only on (name, k), so every process — and every rebuild of
// the router — derives the same placement, which is what keeps
// receipts and in-flight messages routable across a split.
func subgroupIndex(name string, k int) int {
	return int(hash64("subgroup/"+name) % uint64(k))
}

// ringOwnerLocked is the single definition of where a queue lives:
// the owner of its effective placement group, re-derived across k
// sub-arcs while the group is split — sub-arc i is the i-th distinct
// shard after the group's hash in ring order (ring.successor), so a
// k-way split is guaranteed to reach min(k, shards) different shards.
// Co-location degrades gracefully: all of one QUEUE's traffic (and
// its receipts, and its in-flight messages) still maps to exactly one
// sub-arc, only the group's queues fan out over k of them. Caller
// holds r.mu.
func (r *Router) ringOwnerLocked(group, name string) (string, bool) {
	g := effectiveGroup(group, name)
	if k := r.splits[g]; k > 1 {
		return r.ring.successor(g, subgroupIndex(name, k))
	}
	return r.ring.owner(g)
}

func wrapReceipt(shardID, receipt string) string { return shardID + receiptSep + receipt }

func splitReceipt(wrapped string) (shardID, receipt string, ok bool) {
	i := strings.Index(wrapped, receiptSep)
	if i <= 0 {
		return "", "", false
	}
	return wrapped[:i], wrapped[i+1:], true
}

// Config tunes the router.
type Config struct {
	// VirtualNodes per shard on the hash ring (default 64). More nodes
	// spread queues more evenly at the cost of a larger ring.
	VirtualNodes int
	// DrainVisibility is the lease the migrator takes on messages it
	// streams between shards (default 1m): long enough to move a batch,
	// short enough that a crashed migration redelivers quickly.
	DrainVisibility time.Duration
	// ForwardInterval is how often a straggler forwarder polls the old
	// shard after a migration (default 10ms).
	ForwardInterval time.Duration
	// LeaseHorizon bounds how long a forwarder keeps watching the old
	// shard for expiring in-flight messages (default 1h). Past it the
	// old queue is left in place so outstanding receipts stay valid,
	// but nothing is forwarded any more.
	LeaseHorizon time.Duration
	// Metrics, when set, receives the router's instruments: per-op
	// latency histograms (router_op_ns), per-shard request rates
	// (shard_requests) and live backlog gauges (shard_backlog). Nil
	// leaves the data path uninstrumented — not even a clock read.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes == 0 {
		c.VirtualNodes = 64
	}
	if c.DrainVisibility == 0 {
		c.DrainVisibility = time.Minute
	}
	if c.ForwardInterval == 0 {
		c.ForwardInterval = 10 * time.Millisecond
	}
	if c.LeaseHorizon == 0 {
		c.LeaseHorizon = time.Hour
	}
	return c
}

// Router fronts N queue services with one queue.API. Queue names map to
// shards through a consistent-hash ring over their placement-group key
// (DeriveGroup, or an explicit group set with Regroup), so one group's
// queues co-locate; every data-plane call is forwarded to the owning
// shard, receipts route back to the shard that issued them, and shards
// can be added or removed at runtime with drain-and-forward queue
// migration that preserves delivery counts through the privileged
// transfer API.
type Router struct {
	cfg Config

	// topoMu serializes topology changes (AddShard / RemoveShard) and
	// the migrations they trigger.
	topoMu sync.Mutex

	// mu guards ring, shards, routes, splits, pinned, and standbys.
	mu     sync.RWMutex
	ring   *ring
	shards map[string]queue.API
	routes map[string]*route
	// standbys maps a shard id to its registered standby (see
	// failover.go); failovers counts automatic promotions by the health
	// loop.
	standbys  map[string]*standby
	failovers atomic.Int64
	// splits maps a placement group to its sub-arc count; absent (or 1)
	// means unsplit. pinned groups opted out of splitting entirely
	// (strict co-location).
	splits map[string]int
	pinned map[string]bool

	// billing mirrors queue.Service: one request per routed call,
	// attributed to the addressed queue, so the broker's per-tenant
	// accounting works unchanged against a sharded deployment.
	billing queue.RequestCounter

	closing   chan struct{}
	closeOnce sync.Once
	fwd       sync.WaitGroup

	// met is non-nil iff Config.Metrics was set.
	met *routerMetrics
}

// routerOps is the set of routed operations that get their own latency
// histogram. The histogram brackets the whole routed call — owner
// resolution (including any wait on a frozen route), the backend hop,
// and retries — so a migration stall shows up as router latency even
// when the shard itself stayed fast.
var routerOps = []string{
	"create_queue", "delete_queue", "send", "send_batch", "receive",
	"delete", "delete_batch", "change_visibility", "transfer", "count",
	"purge",
}

// routerMetrics is the router's instrument set, created once at
// NewRouter so the request path never touches the registry lock.
type routerMetrics struct {
	reg *telemetry.Registry
	ops map[string]*telemetry.Histogram
	// shardRates caches per-shard request-rate instruments
	// (shard id → *telemetry.Rate).
	shardRates sync.Map
	// groupRates caches per-group request-rate instruments
	// (group key → *telemetry.Rate).
	groupRates sync.Map
	// gaugeMu guards seenGroups across concurrent scrapes; the backlog
	// collector zeroes gauges of groups that vanished (last queue
	// deleted) so a stale reading never lingers at its final value.
	gaugeMu    sync.Mutex
	seenGroups map[string]bool
}

func (r *Router) opStart() time.Time {
	if r.met == nil {
		return time.Time{}
	}
	return time.Now()
}

func (r *Router) opDone(op string, start time.Time) {
	if r.met == nil {
		return
	}
	r.met.ops[op].Observe(time.Since(start))
}

// markShard bumps a shard's request rate. Called wherever a routed call
// resolves a backend — owner resolution, receipt routing, batch-delete
// groups — so the rate counts backend hops, including migration retries.
func (r *Router) markShard(id string) {
	if r.met == nil || id == "" {
		return
	}
	v, ok := r.met.shardRates.Load(id)
	if !ok {
		v, _ = r.met.shardRates.LoadOrStore(id, r.met.reg.Rate(telemetry.Label("shard_requests", "shard", id)))
	}
	v.(*telemetry.Rate).Mark(1)
}

// shardRate reads a shard's current request rate (0 when
// uninstrumented or never addressed).
func (r *Router) shardRate(id string) float64 {
	if r.met == nil {
		return 0
	}
	if v, ok := r.met.shardRates.Load(id); ok {
		return v.(*telemetry.Rate).PerSecond()
	}
	return 0
}

// markGroup bumps a placement group's request rate (group_requests).
// Called beside markShard wherever a routed call resolves a backend, so
// the split policy sees which GROUP is hot, not just which shard.
func (r *Router) markGroup(g string) {
	if r.met == nil || g == "" {
		return
	}
	v, ok := r.met.groupRates.Load(g)
	if !ok {
		v, _ = r.met.groupRates.LoadOrStore(g, r.met.reg.Rate(telemetry.Label("group_requests", "group", g)))
	}
	v.(*telemetry.Rate).Mark(1)
}

// groupRate reads a group's current request rate (0 when
// uninstrumented or never addressed).
func (r *Router) groupRate(g string) float64 {
	if r.met == nil {
		return 0
	}
	if v, ok := r.met.groupRates.Load(g); ok {
		return v.(*telemetry.Rate).PerSecond()
	}
	return 0
}

// scopeTrace binds a trace ID to a backend hop when the backend can
// carry one (queue.TraceScoper — a remote shard client injects it as
// the X-Trace-Id header). The in-process Service is a terminal hop and
// passes through unscoped.
func scopeTrace(b queue.API, trace string) queue.API {
	if trace == "" || b == nil {
		return b
	}
	if ts, ok := b.(queue.TraceScoper); ok {
		return ts.WithTrace(trace)
	}
	return b
}

// route is one queue's placement.
type route struct {
	mu sync.Mutex
	// shard currently owning the queue.
	shard string
	// group is the explicit placement group set by Regroup; empty means
	// the group is derived from the queue name (DeriveGroup).
	group string
	// frozen is non-nil while the queue migrates; operations wait for
	// it to close (the thaw) and then resolve the new owner.
	frozen chan struct{}
	// dead marks a route whose queue was deleted; a pending migration
	// that has not frozen yet must abort rather than stream a deleted
	// queue's messages onto the new owner.
	dead bool
	// draining holds old shards whose in-flight stragglers a background
	// forwarder is still moving over.
	draining map[string]bool
}

var (
	_ queue.API         = (*Router)(nil)
	_ queue.Transferrer = (*Router)(nil)
	_ queue.TraceScoper = (*Router)(nil)
)

// NewRouter creates an empty router; add shards before creating queues.
func NewRouter(cfg Config) *Router {
	c := cfg.withDefaults()
	r := &Router{
		cfg:     c,
		ring:    newRing(c.VirtualNodes),
		shards:  make(map[string]queue.API),
		routes:  make(map[string]*route),
		splits:  make(map[string]int),
		pinned:  make(map[string]bool),
		closing: make(chan struct{}),
	}
	if c.Metrics != nil {
		r.met = &routerMetrics{
			reg:        c.Metrics,
			ops:        make(map[string]*telemetry.Histogram, len(routerOps)),
			seenGroups: make(map[string]bool),
		}
		for _, op := range routerOps {
			r.met.ops[op] = c.Metrics.Histogram(telemetry.Label("router_op_ns", "op", op))
		}
		// Backlog gauges are refreshed at scrape time rather than
		// maintained on the data path: depth is already tracked by each
		// shard, and a per-send gauge update would put a second write on
		// every routed call for a number only read by scrapes. One sweep
		// feeds both attribution axes — per shard and per group.
		c.Metrics.AddCollector(func(reg *telemetry.Registry) {
			byShard, byGroup := r.depthSweep()
			for id, n := range byShard {
				reg.Gauge(telemetry.Label("shard_backlog", "shard", id)).Set(n)
			}
			r.met.gaugeMu.Lock()
			for g := range r.met.seenGroups {
				if _, ok := byGroup[g]; !ok {
					reg.Gauge(telemetry.Label("group_backlog", "group", g)).Set(0)
					delete(r.met.seenGroups, g)
				}
			}
			for g, n := range byGroup {
				r.met.seenGroups[g] = true
				reg.Gauge(telemetry.Label("group_backlog", "group", g)).Set(n)
			}
			r.met.gaugeMu.Unlock()
		})
	}
	return r
}

// Close stops the background straggler forwarders and waits for them.
// Data-plane calls keep working; Close only abandons migrations'
// tail work.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.closing) })
	r.fwd.Wait()
}

// count bills one routed call addressed to queueName, through the same
// attribution model queue.Service uses.
func (r *Router) count(queueName string) { r.billing.Count(queueName) }

// APIRequests returns the total routed calls billed by the router.
func (r *Router) APIRequests() int64 { return r.billing.Total() }

// APIRequestsFor returns the routed calls addressed to one queue.
func (r *Router) APIRequestsFor(queueName string) int64 { return r.billing.For(queueName) }

// ownerBackend resolves the queue's owning shard, waiting out any
// in-progress migration. The returned backend is trace-scoped and the
// shard's request rate is bumped — every caller represents one backend
// hop.
func (r *Router) ownerBackend(trace, queueName string) (string, queue.API, error) {
	r.mu.RLock()
	rt := r.routes[queueName]
	r.mu.RUnlock()
	if rt == nil {
		return "", nil, queue.ErrNoSuchQueue
	}
	for {
		rt.mu.Lock()
		if rt.frozen == nil {
			id, group := rt.shard, rt.group
			rt.mu.Unlock()
			r.mu.RLock()
			b := r.shards[id]
			r.mu.RUnlock()
			if b == nil {
				return "", nil, queue.ErrNoSuchQueue
			}
			r.markShard(id)
			if r.met != nil {
				r.markGroup(effectiveGroup(group, queueName))
			}
			return id, scopeTrace(b, trace), nil
		}
		ch := rt.frozen
		rt.mu.Unlock()
		<-ch
	}
}

// onOwner runs fn against the queue's owning shard. When the shard
// answers ErrNoSuchQueue but the route has moved since the call was
// dispatched (a migration completed underneath it), the call retries on
// the new owner — the sentinel lets the router tell "wrong shard" from
// "queue deleted".
func (r *Router) onOwner(trace, queueName string, fn func(shardID string, b queue.API) error) error {
	for attempt := 0; ; attempt++ {
		id, b, err := r.ownerBackend(trace, queueName)
		if err != nil {
			return err
		}
		err = fn(id, b)
		if err == nil || !errors.Is(err, queue.ErrNoSuchQueue) || attempt >= 2 {
			return err
		}
		newID, _, rerr := r.ownerBackend(trace, queueName)
		if rerr != nil || newID == id {
			return err
		}
	}
}

// CreateQueue places a new queue on its ring owner. The route is
// published frozen and thawed only after the backend queue exists:
// concurrent operations (and a concurrent AddShard's migration) wait
// instead of finding a route whose shard has no queue yet — a
// half-created queue migrated in that window would leave an orphan
// copy on the old owner.
func (r *Router) createQueue(trace, name string) error {
	if name == "" {
		return queue.ErrEmptyQueueName
	}
	defer r.opDone("create_queue", r.opStart())
	r.count(name)
	r.mu.Lock()
	if _, ok := r.routes[name]; ok {
		r.mu.Unlock()
		return queue.ErrQueueExists
	}
	owner, ok := r.ringOwnerLocked("", name)
	if !ok {
		r.mu.Unlock()
		return ErrNoShards
	}
	rt := &route{shard: owner, frozen: make(chan struct{}), draining: make(map[string]bool)}
	r.routes[name] = rt
	b := r.shards[owner]
	r.mu.Unlock()
	r.markShard(owner)
	if r.met != nil {
		r.markGroup(DeriveGroup(name))
	}
	err := scopeTrace(b, trace).CreateQueue(name)
	if err != nil && !errors.Is(err, queue.ErrQueueExists) {
		r.mu.Lock()
		// Only remove our own route: a concurrent DeleteQueue may have
		// removed it already and a later CreateQueue published a new
		// one, which must not be torn down by this failure.
		if r.routes[name] == rt {
			delete(r.routes, name)
		}
		r.mu.Unlock()
	} else {
		err = nil
	}
	rt.mu.Lock()
	if err != nil {
		rt.dead = true
	}
	// Never reset dead: a concurrent DeleteQueue may have marked the
	// route while we held it frozen.
	close(rt.frozen)
	rt.frozen = nil
	rt.mu.Unlock()
	return err
}

// DeleteQueue removes a queue from its owner and from every old shard
// still draining stragglers.
func (r *Router) deleteQueue(trace, name string) error {
	defer r.opDone("delete_queue", r.opStart())
	r.count(name)
	r.mu.Lock()
	rt := r.routes[name]
	if rt == nil {
		r.mu.Unlock()
		return queue.ErrNoSuchQueue
	}
	delete(r.routes, name)
	r.mu.Unlock()
	// Mark the route dead (a migration computed before the removal must
	// not stream this queue's messages anywhere) and wait out any
	// migration already in flight so the drain isn't racing the
	// teardown — once it thaws, the snapshot below covers the new owner.
	var owner string
	var olds []string
	for {
		rt.mu.Lock()
		rt.dead = true
		if rt.frozen == nil {
			owner = rt.shard
			for id := range rt.draining {
				olds = append(olds, id)
			}
			rt.mu.Unlock()
			break
		}
		ch := rt.frozen
		rt.mu.Unlock()
		<-ch
	}
	r.mu.RLock()
	b := r.shards[owner]
	oldBs := make([]queue.API, 0, len(olds))
	for _, id := range olds {
		if ob := r.shards[id]; ob != nil {
			oldBs = append(oldBs, ob)
		}
	}
	r.mu.RUnlock()
	var err error
	if b != nil {
		r.markShard(owner)
		err = scopeTrace(b, trace).DeleteQueue(name)
	}
	for _, ob := range oldBs {
		_ = scopeTrace(ob, trace).DeleteQueue(name) // forwarder may have beaten us to it
	}
	return err
}

// ListQueues returns every routed queue name, sorted.
func (r *Router) ListQueues() []string {
	r.billing.CountUnattributed()
	r.mu.RLock()
	names := make([]string, 0, len(r.routes))
	for n := range r.routes {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

func (r *Router) sendMessage(trace, queueName string, body []byte) (string, error) {
	defer r.opDone("send", r.opStart())
	r.count(queueName)
	var id string
	err := r.onOwner(trace, queueName, func(_ string, b queue.API) error {
		var err error
		id, err = b.SendMessage(queueName, body)
		return err
	})
	return id, err
}

func (r *Router) sendMessageBatch(trace, queueName string, bodies [][]byte) ([]string, error) {
	if len(bodies) == 0 || len(bodies) > queue.MaxBatch {
		return nil, queue.ErrBatchSize
	}
	defer r.opDone("send_batch", r.opStart())
	r.count(queueName)
	var ids []string
	err := r.onOwner(trace, queueName, func(_ string, b queue.API) error {
		var err error
		ids, err = b.SendMessageBatch(queueName, bodies)
		return err
	})
	return ids, err
}

// transferIn routes a privileged count-preserving enqueue to the
// owning shard (queue.Transferrer).
func (r *Router) transferIn(trace, queueName string, body []byte, receives int) (string, error) {
	ids, err := r.transferInBatch(trace, queueName, []queue.TransferItem{{Body: body, Receives: receives}})
	if err != nil {
		return "", err
	}
	if len(ids) == 0 {
		// A malformed remote shard answered without ids; don't panic.
		return "", fmt.Errorf("shard: transfer into %s: backend returned no ids", queueName)
	}
	return ids[0], nil
}

// TransferInBatch routes a privileged count-preserving batch enqueue
// to the owning shard, billed as one request like every routed batch
// call. The backing shard must also implement queue.Transferrer — a
// remote shard additionally needs its admin token configured, or the
// call fails with queue.ErrNotPrivileged.
func (r *Router) transferInBatch(trace, queueName string, items []queue.TransferItem) ([]string, error) {
	if len(items) == 0 || len(items) > queue.MaxBatch {
		return nil, queue.ErrBatchSize
	}
	for _, it := range items {
		if it.Receives < 0 {
			return nil, fmt.Errorf("%w: %d", queue.ErrBadTransfer, it.Receives)
		}
	}
	defer r.opDone("transfer", r.opStart())
	r.count(queueName)
	var ids []string
	err := r.onOwner(trace, queueName, func(id string, b queue.API) error {
		tr, ok := b.(queue.Transferrer)
		if !ok {
			return fmt.Errorf("shard: shard %s cannot accept transfers: %w", id, queue.ErrNotPrivileged)
		}
		var err error
		ids, err = tr.TransferInBatch(queueName, items)
		return err
	})
	return ids, err
}

// receiveMessageWait long-polls the owning shard; the wait happens on
// the shard so a send through the router wakes the receiver there.
func (r *Router) receiveMessageWait(trace, queueName string, visibility, wait time.Duration) (queue.Message, bool, error) {
	defer r.opDone("receive", r.opStart())
	r.count(queueName)
	var m queue.Message
	var ok bool
	err := r.onOwner(trace, queueName, func(id string, b queue.API) error {
		var err error
		m, ok, err = b.ReceiveMessageWait(queueName, visibility, wait)
		if ok {
			m.ReceiptHandle = wrapReceipt(id, m.ReceiptHandle)
		}
		return err
	})
	if err != nil {
		return queue.Message{}, false, err
	}
	return m, ok, nil
}

// receiveMessageBatch receives up to max messages from the owning shard.
func (r *Router) receiveMessageBatch(trace, queueName string, visibility time.Duration, max int, wait time.Duration) ([]queue.Message, error) {
	if max <= 0 || max > queue.MaxBatch {
		return nil, queue.ErrBatchSize
	}
	defer r.opDone("receive", r.opStart())
	r.count(queueName)
	var msgs []queue.Message
	err := r.onOwner(trace, queueName, func(id string, b queue.API) error {
		var err error
		msgs, err = b.ReceiveMessageBatch(queueName, visibility, max, wait)
		for i := range msgs {
			msgs[i].ReceiptHandle = wrapReceipt(id, msgs[i].ReceiptHandle)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return msgs, nil
}

// receiptBackend resolves the shard a receipt was issued by. The queue
// must still be routed; a receipt whose shard is gone — or whose shard
// has since lost the queue to a migration — is stale, not missing: the
// message was moved and only its next delivery's receipt counts.
func (r *Router) receiptBackend(trace, queueName, wrapped string) (queue.API, string, error) {
	r.mu.RLock()
	rt := r.routes[queueName]
	r.mu.RUnlock()
	if rt == nil {
		return nil, "", queue.ErrNoSuchQueue
	}
	id, raw, ok := splitReceipt(wrapped)
	if !ok {
		return nil, "", fmt.Errorf("shard: unroutable receipt %q: %w", wrapped, queue.ErrStaleReceipt)
	}
	r.mu.RLock()
	b := r.shards[id]
	r.mu.RUnlock()
	if b == nil {
		return nil, "", fmt.Errorf("shard: receipt from unknown shard %q: %w", id, queue.ErrStaleReceipt)
	}
	r.markShard(id)
	if r.met != nil {
		rt.mu.Lock()
		group := rt.group
		rt.mu.Unlock()
		r.markGroup(effectiveGroup(group, queueName))
	}
	return scopeTrace(b, trace), raw, nil
}

// deleteMessage acknowledges by receipt, routed to the issuing shard.
func (r *Router) deleteMessage(trace, queueName, receiptHandle string) error {
	defer r.opDone("delete", r.opStart())
	r.count(queueName)
	b, raw, err := r.receiptBackend(trace, queueName, receiptHandle)
	if err != nil {
		return err
	}
	err = b.DeleteMessage(queueName, raw)
	if errors.Is(err, queue.ErrNoSuchQueue) {
		return fmt.Errorf("shard: queue %s migrated off the issuing shard: %w", queueName, queue.ErrStaleReceipt)
	}
	return err
}

// deleteMessageBatch acknowledges a batch, grouping receipts by issuing
// shard; entries keep their per-receipt error positions.
func (r *Router) deleteMessageBatch(trace, queueName string, receipts []string) ([]error, error) {
	if len(receipts) == 0 || len(receipts) > queue.MaxBatch {
		return nil, queue.ErrBatchSize
	}
	defer r.opDone("delete_batch", r.opStart())
	r.count(queueName)
	r.mu.RLock()
	rt := r.routes[queueName]
	r.mu.RUnlock()
	if rt == nil {
		return nil, queue.ErrNoSuchQueue
	}
	if r.met != nil {
		rt.mu.Lock()
		group := rt.group
		rt.mu.Unlock()
		r.markGroup(effectiveGroup(group, queueName))
	}
	results := make([]error, len(receipts))
	type group struct {
		idx []int
		raw []string
	}
	groups := make(map[string]*group)
	for i, wrapped := range receipts {
		id, raw, ok := splitReceipt(wrapped)
		if !ok {
			results[i] = fmt.Errorf("shard: unroutable receipt %q: %w", wrapped, queue.ErrStaleReceipt)
			continue
		}
		g := groups[id]
		if g == nil {
			g = &group{}
			groups[id] = g
		}
		g.idx = append(g.idx, i)
		g.raw = append(g.raw, raw)
	}
	for id, g := range groups {
		r.mu.RLock()
		b := r.shards[id]
		r.mu.RUnlock()
		if b == nil {
			for _, i := range g.idx {
				results[i] = fmt.Errorf("shard: receipt from unknown shard %q: %w", id, queue.ErrStaleReceipt)
			}
			continue
		}
		r.markShard(id)
		res, err := scopeTrace(b, trace).DeleteMessageBatch(queueName, g.raw)
		if err != nil {
			perEntry := err
			if errors.Is(err, queue.ErrNoSuchQueue) {
				perEntry = fmt.Errorf("shard: queue %s migrated off shard %s: %w", queueName, id, queue.ErrStaleReceipt)
			}
			for _, i := range g.idx {
				results[i] = perEntry
			}
			continue
		}
		for k, i := range g.idx {
			results[i] = res[k]
		}
	}
	return results, nil
}

// changeVisibility adjusts a lease on the issuing shard.
func (r *Router) changeVisibility(trace, queueName, receiptHandle string, d time.Duration) error {
	defer r.opDone("change_visibility", r.opStart())
	r.count(queueName)
	b, raw, err := r.receiptBackend(trace, queueName, receiptHandle)
	if err != nil {
		return err
	}
	err = b.ChangeVisibility(queueName, raw, d)
	if errors.Is(err, queue.ErrNoSuchQueue) {
		return fmt.Errorf("shard: queue %s migrated off the issuing shard: %w", queueName, queue.ErrStaleReceipt)
	}
	return err
}

// approximateCount sums the owner's counts with any old shards still
// holding in-flight stragglers, so totals stay truthful mid-migration.
func (r *Router) approximateCount(trace, queueName string) (visible, inflight int, err error) {
	defer r.opDone("count", r.opStart())
	r.count(queueName)
	err = r.onOwner(trace, queueName, func(_ string, b queue.API) error {
		var err error
		visible, inflight, err = b.ApproximateCount(queueName)
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	for _, ob := range r.drainingBackends(trace, queueName) {
		if v, inf, derr := ob.ApproximateCount(queueName); derr == nil {
			visible += v
			inflight += inf
		}
	}
	return visible, inflight, nil
}

// purge clears the queue on its owner and on any draining old shards.
func (r *Router) purge(trace, queueName string) error {
	defer r.opDone("purge", r.opStart())
	r.count(queueName)
	err := r.onOwner(trace, queueName, func(_ string, b queue.API) error {
		return b.Purge(queueName)
	})
	if err != nil {
		return err
	}
	for _, ob := range r.drainingBackends(trace, queueName) {
		_ = ob.Purge(queueName)
	}
	return nil
}

// ---- public queue.API surface ----
//
// Every public method is a thin trace-less wrapper over its internal
// traced twin; WithTrace returns a view binding a trace ID to the same
// router state. Latency histograms and shard rates live on the internal
// paths, so traced and untraced calls are measured identically.

// CreateQueue places a new queue on its ring owner (see createQueue).
func (r *Router) CreateQueue(name string) error { return r.createQueue("", name) }

// DeleteQueue removes a queue from its owner and draining old shards.
func (r *Router) DeleteQueue(name string) error { return r.deleteQueue("", name) }

// SendMessage enqueues on the owning shard.
func (r *Router) SendMessage(queueName string, body []byte) (string, error) {
	return r.sendMessage("", queueName, body)
}

// SendMessageBatch enqueues a batch on the owning shard.
func (r *Router) SendMessageBatch(queueName string, bodies [][]byte) ([]string, error) {
	return r.sendMessageBatch("", queueName, bodies)
}

// ReceiveMessage pops one message from the owning shard.
func (r *Router) ReceiveMessage(queueName string, visibility time.Duration) (queue.Message, bool, error) {
	return r.receiveMessageWait("", queueName, visibility, 0)
}

// ReceiveMessageWait long-polls the owning shard.
func (r *Router) ReceiveMessageWait(queueName string, visibility, wait time.Duration) (queue.Message, bool, error) {
	return r.receiveMessageWait("", queueName, visibility, wait)
}

// ReceiveMessageBatch receives up to max messages from the owning shard.
func (r *Router) ReceiveMessageBatch(queueName string, visibility time.Duration, max int, wait time.Duration) ([]queue.Message, error) {
	return r.receiveMessageBatch("", queueName, visibility, max, wait)
}

// DeleteMessage acknowledges by receipt, routed to the issuing shard.
func (r *Router) DeleteMessage(queueName, receiptHandle string) error {
	return r.deleteMessage("", queueName, receiptHandle)
}

// DeleteMessageBatch acknowledges a batch, grouped by issuing shard.
func (r *Router) DeleteMessageBatch(queueName string, receipts []string) ([]error, error) {
	return r.deleteMessageBatch("", queueName, receipts)
}

// ChangeVisibility adjusts a lease on the issuing shard.
func (r *Router) ChangeVisibility(queueName, receiptHandle string, d time.Duration) error {
	return r.changeVisibility("", queueName, receiptHandle, d)
}

// ApproximateCount sums the owner's counts with any draining old shards.
func (r *Router) ApproximateCount(queueName string) (visible, inflight int, err error) {
	return r.approximateCount("", queueName)
}

// Purge clears the queue on its owner and on any draining old shards.
func (r *Router) Purge(queueName string) error { return r.purge("", queueName) }

// TransferIn routes a privileged count-preserving enqueue to the owning
// shard (queue.Transferrer).
func (r *Router) TransferIn(queueName string, body []byte, receives int) (string, error) {
	return r.transferIn("", queueName, body, receives)
}

// TransferInBatch routes a privileged count-preserving batch enqueue to
// the owning shard (queue.Transferrer).
func (r *Router) TransferInBatch(queueName string, items []queue.TransferItem) ([]string, error) {
	return r.transferInBatch("", queueName, items)
}

// WithTrace returns a view of the router that carries traceID through to
// every backend hop (queue.TraceScoper): a remote shard client injects
// it as the X-Trace-Id header, so one logical request stays correlatable
// from the caller through the router to the shard that served it.
func (r *Router) WithTrace(traceID string) queue.API {
	return &routerView{r: r, trace: traceID}
}

// routerView is a trace-bound view over a Router. It shares all router
// state — it only pins the trace ID forwarded on backend hops.
type routerView struct {
	r     *Router
	trace string
}

var (
	_ queue.API         = (*routerView)(nil)
	_ queue.Transferrer = (*routerView)(nil)
	_ queue.TraceScoper = (*routerView)(nil)
)

func (v *routerView) WithTrace(traceID string) queue.API {
	return &routerView{r: v.r, trace: traceID}
}
func (v *routerView) CreateQueue(name string) error { return v.r.createQueue(v.trace, name) }
func (v *routerView) DeleteQueue(name string) error { return v.r.deleteQueue(v.trace, name) }
func (v *routerView) ListQueues() []string          { return v.r.ListQueues() }
func (v *routerView) SendMessage(queueName string, body []byte) (string, error) {
	return v.r.sendMessage(v.trace, queueName, body)
}
func (v *routerView) SendMessageBatch(queueName string, bodies [][]byte) ([]string, error) {
	return v.r.sendMessageBatch(v.trace, queueName, bodies)
}
func (v *routerView) ReceiveMessage(queueName string, visibility time.Duration) (queue.Message, bool, error) {
	return v.r.receiveMessageWait(v.trace, queueName, visibility, 0)
}
func (v *routerView) ReceiveMessageWait(queueName string, visibility, wait time.Duration) (queue.Message, bool, error) {
	return v.r.receiveMessageWait(v.trace, queueName, visibility, wait)
}
func (v *routerView) ReceiveMessageBatch(queueName string, visibility time.Duration, max int, wait time.Duration) ([]queue.Message, error) {
	return v.r.receiveMessageBatch(v.trace, queueName, visibility, max, wait)
}
func (v *routerView) DeleteMessage(queueName, receiptHandle string) error {
	return v.r.deleteMessage(v.trace, queueName, receiptHandle)
}
func (v *routerView) DeleteMessageBatch(queueName string, receipts []string) ([]error, error) {
	return v.r.deleteMessageBatch(v.trace, queueName, receipts)
}
func (v *routerView) ChangeVisibility(queueName, receiptHandle string, d time.Duration) error {
	return v.r.changeVisibility(v.trace, queueName, receiptHandle, d)
}
func (v *routerView) ApproximateCount(queueName string) (visible, inflight int, err error) {
	return v.r.approximateCount(v.trace, queueName)
}
func (v *routerView) Purge(queueName string) error { return v.r.purge(v.trace, queueName) }
func (v *routerView) TransferIn(queueName string, body []byte, receives int) (string, error) {
	return v.r.transferIn(v.trace, queueName, body, receives)
}
func (v *routerView) TransferInBatch(queueName string, items []queue.TransferItem) ([]string, error) {
	return v.r.transferInBatch(v.trace, queueName, items)
}
func (v *routerView) APIRequests() int64                    { return v.r.APIRequests() }
func (v *routerView) APIRequestsFor(queueName string) int64 { return v.r.APIRequestsFor(queueName) }

// drainingBackends snapshots the old shards still forwarding a queue's
// stragglers. The current owner is excluded even when its forwarder has
// not exited yet (the queue migrated back onto a watched shard), so
// callers never count the live copy twice.
func (r *Router) drainingBackends(trace, queueName string) []queue.API {
	r.mu.RLock()
	rt := r.routes[queueName]
	r.mu.RUnlock()
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	ids := make([]string, 0, len(rt.draining))
	for id := range rt.draining {
		if id != rt.shard {
			ids = append(ids, id)
		}
	}
	rt.mu.Unlock()
	if len(ids) == 0 {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]queue.API, 0, len(ids))
	for _, id := range ids {
		if b := r.shards[id]; b != nil {
			r.markShard(id)
			out = append(out, scopeTrace(b, trace))
		}
	}
	return out
}

// Shards returns the ring members, sorted.
func (r *Router) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.members()
}

// Owners snapshots the queue→shard placement.
func (r *Router) Owners() map[string]string {
	r.mu.RLock()
	routes := make(map[string]*route, len(r.routes))
	for n, rt := range r.routes {
		routes[n] = rt
	}
	r.mu.RUnlock()
	out := make(map[string]string, len(routes))
	for n, rt := range routes {
		rt.mu.Lock()
		out[n] = rt.shard
		rt.mu.Unlock()
	}
	return out
}

// ShardStat describes one shard's share of the namespace and traffic.
type ShardStat struct {
	ID string
	// OnRing is false for retired shards: removed from the ring but
	// still reachable for straggler receipts.
	OnRing bool
	// Queues currently routed to the shard.
	Queues int
	// Requests is the billed request count the shard itself observed —
	// router traffic plus migration/forwarding traffic.
	Requests int64
	// Backlog is the shard's live message depth: visible plus in-flight,
	// summed over the queues it currently owns, plus leftover stragglers
	// it still holds for queues that migrated away. Each message is
	// attributed to exactly one shard (see backlogByShard).
	Backlog int64
	// RatePerSec is the router-observed request rate to this shard,
	// averaged over the trailing 10s window. Zero when the router has no
	// metrics registry.
	RatePerSec float64
	// Weight is the shard's ring-arc weight (1 = fair share of the key
	// space); 0 for a retired shard no longer on the ring.
	Weight float64
}

// Stats aggregates per-shard placement, billing, live depth, and load —
// the sharded view of the attribution model consumers already use per
// queue.
func (r *Router) Stats() []ShardStat {
	owners := r.Owners()
	perShard := make(map[string]int)
	for _, id := range owners {
		perShard[id]++
	}
	r.mu.RLock()
	ids := make([]string, 0, len(r.shards))
	for id := range r.shards {
		ids = append(ids, id)
	}
	backends := make(map[string]queue.API, len(r.shards))
	for id, b := range r.shards {
		backends[id] = b
	}
	onRing := make(map[string]bool, len(r.ring.ids))
	for id := range r.ring.ids {
		onRing[id] = true
	}
	weights := make(map[string]float64, len(r.ring.weights))
	for id, w := range r.ring.weights {
		weights[id] = w
	}
	r.mu.RUnlock()
	sort.Strings(ids)
	// Read billed request counts BEFORE probing backlogs: depth probes
	// against remote shards are themselves billed requests, and reading
	// in the other order would report Requests inflated by this very
	// Stats call.
	requests := make(map[string]int64, len(ids))
	for _, id := range ids {
		requests[id] = backends[id].APIRequests()
	}
	backlog := r.backlogByShard()
	out := make([]ShardStat, 0, len(ids))
	for _, id := range ids {
		out = append(out, ShardStat{
			ID:         id,
			OnRing:     onRing[id],
			Queues:     perShard[id],
			Requests:   requests[id],
			Backlog:    backlog[id],
			RatePerSec: r.shardRate(id),
			Weight:     weights[id],
		})
	}
	return out
}

// GroupStat describes one placement group's footprint and traffic.
type GroupStat struct {
	Group string
	// Queues currently routed under the group.
	Queues int
	// Subgroups is the number of sub-arcs the group is split across
	// (1 = unsplit).
	Subgroups int
	// Pinned groups opted out of hot-group splitting (strict
	// co-location).
	Pinned bool
	// Shards the group's queues currently occupy, sorted. More than one
	// entry means the group is split (or mid-migration).
	Shards []string
	// Requests is the router-billed call count addressed to the group's
	// queues since they were created.
	Requests int64
	// Backlog is the group's live message depth (visible + in-flight),
	// including straggler copies still draining off old shards.
	Backlog int64
	// RatePerSec is the router-observed request rate to the group over
	// the trailing 10s window (0 without a metrics registry).
	RatePerSec float64
}

// GroupStats aggregates per-group placement, billing, depth, and load —
// the axis the split policy (and a capacity-planning operator) cares
// about: WHICH tenant is hot, not just which shard it happens to sit
// on. Sorted by group.
func (r *Router) GroupStats() []GroupStat {
	r.mu.RLock()
	routes := make(map[string]*route, len(r.routes))
	for n, rt := range r.routes {
		routes[n] = rt
	}
	splits := make(map[string]int, len(r.splits))
	for g, k := range r.splits {
		splits[g] = k
	}
	pinned := make(map[string]bool, len(r.pinned))
	for g := range r.pinned {
		pinned[g] = true
	}
	r.mu.RUnlock()
	agg := make(map[string]*GroupStat)
	shardsOf := make(map[string]map[string]bool)
	for name, rt := range routes {
		rt.mu.Lock()
		owner, group, dead := rt.shard, rt.group, rt.dead
		rt.mu.Unlock()
		if dead {
			continue
		}
		g := effectiveGroup(group, name)
		st := agg[g]
		if st == nil {
			k := splits[g]
			if k < 1 {
				k = 1
			}
			st = &GroupStat{Group: g, Subgroups: k, Pinned: pinned[g], RatePerSec: r.groupRate(g)}
			agg[g] = st
			shardsOf[g] = make(map[string]bool)
		}
		st.Queues++
		shardsOf[g][owner] = true
		st.Requests += r.billing.For(name)
	}
	_, byGroup := r.depthSweep()
	out := make([]GroupStat, 0, len(agg))
	for g, st := range agg {
		st.Backlog = byGroup[g]
		for id := range shardsOf[g] {
			st.Shards = append(st.Shards, id)
		}
		sort.Strings(st.Shards)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// SetShardWeight rescales a shard's ring arc (1 = a fair share of the
// key space; clamped to [1/16, 16]). Only the ring re-keys — no data
// moves until the next Rebalance, so a policy can adjust several
// weights and pay a single migration sweep. Reports whether the
// shard's point count actually changed (false means the nudge rounded
// to the same arc and Rebalance has nothing new to do).
func (r *Router) SetShardWeight(id string, w float64) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.ring.ids[id] {
		return false, ErrNoSuchShard
	}
	return r.ring.setWeight(id, w), nil
}

// ShardWeights snapshots the ring-arc weight of every shard on the
// ring.
func (r *Router) ShardWeights() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.ring.weights))
	for id, w := range r.ring.weights {
		out[id] = w
	}
	return out
}

// Splits snapshots the sub-arc count of every currently-split group.
func (r *Router) Splits() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.splits))
	for g, k := range r.splits {
		out[g] = k
	}
	return out
}

// backlogByShard attributes every routed queue's live depth to the
// shards actually holding its messages: the owner's count to the owner,
// and each draining old shard's own leftover count to that shard. The
// current owner is excluded from a route's draining set — the same
// exclusion drainingBackends applies — so a queue that migrated back
// onto a still-watched shard is never counted twice. Routes are read
// without waiting out a freeze (an admin snapshot must not block on a
// migration), so a queue mid-drain may briefly show its messages split
// across both shards — which is also where they physically are.
//
// Depth is read through the unbilled queue.DepthReporter diagnostic
// when the backend offers it (a local *queue.Service); remote shards
// fall back to a billed ApproximateCount probe per queue.
func (r *Router) backlogByShard() map[string]int64 {
	byShard, _ := r.depthSweep()
	return byShard
}

// depthSweep probes every routed queue's depth once and attributes it
// along both axes: to the shards physically holding the messages
// (owner + draining old shards, see backlogByShard) and to the queue's
// effective placement group (owner and straggler copies both — the
// group's messages wherever they sit, which is what the split policy
// sizes against).
func (r *Router) depthSweep() (byShard, byGroup map[string]int64) {
	r.mu.RLock()
	routes := make(map[string]*route, len(r.routes))
	for n, rt := range r.routes {
		routes[n] = rt
	}
	backends := make(map[string]queue.API, len(r.shards))
	for id, b := range r.shards {
		backends[id] = b
	}
	r.mu.RUnlock()
	byShard = make(map[string]int64, len(backends))
	byGroup = make(map[string]int64)
	for id := range backends {
		byShard[id] = 0
	}
	for name, rt := range routes {
		rt.mu.Lock()
		owner := rt.shard
		group := rt.group
		dead := rt.dead
		drains := make([]string, 0, len(rt.draining))
		for id := range rt.draining {
			if id != owner {
				drains = append(drains, id)
			}
		}
		rt.mu.Unlock()
		if dead {
			continue
		}
		g := effectiveGroup(group, name)
		if _, ok := byGroup[g]; !ok {
			byGroup[g] = 0
		}
		if v, inf, ok := queueDepth(backends[owner], name); ok {
			byShard[owner] += int64(v) + int64(inf)
			byGroup[g] += int64(v) + int64(inf)
		}
		for _, id := range drains {
			if v, inf, ok := queueDepth(backends[id], name); ok {
				byShard[id] += int64(v) + int64(inf)
				byGroup[g] += int64(v) + int64(inf)
			}
		}
	}
	return byShard, byGroup
}

// queueDepth reads one queue's depth on one backend, preferring the
// unbilled diagnostic surface.
func queueDepth(b queue.API, name string) (visible, inflight int, ok bool) {
	if b == nil {
		return 0, 0, false
	}
	if dr, isDR := b.(queue.DepthReporter); isDR {
		v, inf, err := dr.QueueDepth(name)
		return v, inf, err == nil
	}
	v, inf, err := b.ApproximateCount(name)
	return v, inf, err == nil
}
