package queue

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// transferFixture serves a Service with a provisioned admin token and
// returns a privileged client plus the underlying service.
func transferFixture(t *testing.T, serverToken string) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService(Config{Seed: 1})
	srv := httptest.NewServer(&HTTPHandler{Service: svc, AdminToken: serverToken})
	t.Cleanup(srv.Close)
	return svc, srv
}

// TestHTTPTransferRoundTrip: a privileged client transfers a counted
// message and the count survives the wire.
func TestHTTPTransferRoundTrip(t *testing.T) {
	svc, srv := transferFixture(t, "sekrit")
	c := &HTTPClient{BaseURL: srv.URL, AdminToken: "sekrit"}
	if err := c.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	ids, err := c.TransferInBatch("q", []TransferItem{
		{Body: []byte("a"), Receives: 2},
		{Body: []byte("b"), Receives: 0},
	})
	if err != nil || len(ids) != 2 {
		t.Fatalf("transfer: ids=%v err=%v", ids, err)
	}
	counts := map[string]int{}
	for i := 0; i < 2; i++ {
		m, ok, err := c.Receive("q", time.Minute)
		if err != nil || !ok {
			t.Fatalf("receive %d: ok=%v err=%v", i, ok, err)
		}
		counts[string(m.Body)] = m.Receives
	}
	if counts["a"] != 3 || counts["b"] != 1 {
		t.Errorf("receive counts after wire transfer = %v, want a:3 b:1", counts)
	}
	_ = svc
}

// TestHTTPTransferPrivilege: every flavour of unprivileged caller gets
// ErrNotPrivileged — no token, a wrong token, and a server whose
// endpoint was never provisioned.
func TestHTTPTransferPrivilege(t *testing.T) {
	_, srv := transferFixture(t, "sekrit")
	mk := func(baseURL, token string) error {
		c := &HTTPClient{BaseURL: baseURL, AdminToken: token}
		if err := c.CreateQueue("q"); err != nil && !errors.Is(err, ErrQueueExists) {
			t.Fatal(err)
		}
		_, err := c.TransferIn("q", []byte("x"), 1)
		return err
	}
	if err := mk(srv.URL, ""); !errors.Is(err, ErrNotPrivileged) {
		t.Errorf("no token: %v, want ErrNotPrivileged", err)
	}
	if err := mk(srv.URL, "wrong"); !errors.Is(err, ErrNotPrivileged) {
		t.Errorf("wrong token: %v, want ErrNotPrivileged", err)
	}
	// Endpoint not provisioned at all: even the "right" token fails.
	_, bare := transferFixture(t, "")
	if err := mk(bare.URL, "sekrit"); !errors.Is(err, ErrNotPrivileged) {
		t.Errorf("unprovisioned server: %v, want ErrNotPrivileged", err)
	}
	// The public path is untouched by privilege checks.
	c := &HTTPClient{BaseURL: srv.URL}
	if _, err := c.Send("q", []byte("public")); err != nil {
		t.Errorf("public send alongside a gated transfer endpoint: %v", err)
	}
}

// TestHTTPTransferBadRequests: malformed bodies and negative receive
// counts are 400s, and nothing is enqueued.
func TestHTTPTransferBadRequests(t *testing.T) {
	svc, srv := transferFixture(t, "sekrit")
	if err := svc.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	post := func(body string) int {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/q/q/transfer", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer sekrit")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{"items": [`); got != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", got)
	}
	if got := post(`{"items": [{"body": "eA==", "receives": -3}]}`); got != http.StatusBadRequest {
		t.Errorf("negative receives: status %d, want 400", got)
	}
	if got := post(`{"items": []}`); got != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", got)
	}
	if v, inf, _ := svc.ApproximateCount("q"); v != 0 || inf != 0 {
		t.Errorf("rejected transfer enqueued messages: %d/%d", v, inf)
	}
}

// TestHTTPTransferUnknownQueue: the ErrNoSuchQueue sentinel crosses the
// wire in both directions — the server maps it to 404, the client maps
// 404 back so errors.Is holds on both sides.
func TestHTTPTransferUnknownQueue(t *testing.T) {
	svc, srv := transferFixture(t, "sekrit")
	if _, err := svc.TransferIn("ghost", []byte("x"), 1); !errors.Is(err, ErrNoSuchQueue) {
		t.Fatalf("server side: %v, want ErrNoSuchQueue", err)
	}
	c := &HTTPClient{BaseURL: srv.URL, AdminToken: "sekrit"}
	if _, err := c.TransferIn("ghost", []byte("x"), 1); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("client side: %v, want ErrNoSuchQueue across the wire", err)
	}
}

// TestHTTPTransferBilling: one transfer batch bills the destination
// queue exactly one request, observable through the public billing
// endpoint.
func TestHTTPTransferBilling(t *testing.T) {
	svc, srv := transferFixture(t, "sekrit")
	c := &HTTPClient{BaseURL: srv.URL, AdminToken: "sekrit"}
	if err := c.CreateQueue("dst"); err != nil {
		t.Fatal(err)
	}
	base := svc.APIRequestsFor("dst")
	items := make([]TransferItem, 5)
	for i := range items {
		items[i] = TransferItem{Body: []byte("m"), Receives: i}
	}
	if _, err := c.TransferInBatch("dst", items); err != nil {
		t.Fatal(err)
	}
	if got := svc.APIRequestsFor("dst") - base; got != 1 {
		t.Errorf("5-item transfer billed %d requests to the destination, want exactly 1", got)
	}
	if got := c.APIRequestsFor("dst"); got != base+1 {
		t.Errorf("billing endpoint reports %d, want %d", got, base+1)
	}
}

// TestHTTPGroupedQueueNames: a placement-grouped name ("job-1/tasks")
// survives the HTTP path as one escaped segment end to end — create,
// send, receive, ack, count, purge, delete.
func TestHTTPGroupedQueueNames(t *testing.T) {
	_, srv := transferFixture(t, "")
	c := &HTTPClient{BaseURL: srv.URL}
	const qn = "job-1/tasks"
	if err := c.CreateQueue(qn); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(qn, []byte("grouped")); err != nil {
		t.Fatal(err)
	}
	m, ok, err := c.Receive(qn, time.Minute)
	if err != nil || !ok || string(m.Body) != "grouped" {
		t.Fatalf("receive on grouped name: ok=%v err=%v body=%q", ok, err, m.Body)
	}
	if err := c.Delete(qn, m.ReceiptHandle); err != nil {
		t.Fatalf("ack on grouped name: %v", err)
	}
	if v, inf, err := c.ApproximateCount(qn); err != nil || v != 0 || inf != 0 {
		t.Fatalf("count on grouped name: %d/%d (%v)", v, inf, err)
	}
	if err := c.Purge(qn); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteQueue(qn); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ApproximateCount(qn); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("deleted grouped queue: %v, want ErrNoSuchQueue", err)
	}
}
