package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"

	"repro/internal/queue"
)

// Response status codes. statusOK is followed by the op-specific result
// payload; every other code is followed by str(message) and maps back
// to one of the queue package's sentinel errors so errors.Is keeps
// working across the wire, exactly as it does across the HTTP face.
const (
	statusOK byte = iota
	statusError
	statusNoSuchQueue
	statusQueueExists
	statusStaleReceipt
	statusEmptyQueueName
	statusBatchSize
	statusNotPrivileged
	statusBadTransfer
)

var statusSentinels = map[byte]error{
	statusNoSuchQueue:    queue.ErrNoSuchQueue,
	statusQueueExists:    queue.ErrQueueExists,
	statusStaleReceipt:   queue.ErrStaleReceipt,
	statusEmptyQueueName: queue.ErrEmptyQueueName,
	statusBatchSize:      queue.ErrBatchSize,
	statusNotPrivileged:  queue.ErrNotPrivileged,
	statusBadTransfer:    queue.ErrBadTransfer,
}

// statusFor classifies an error for the wire, mirroring the HTTP
// handler's status-code mapping.
func statusFor(err error) byte {
	switch {
	case errors.Is(err, queue.ErrNoSuchQueue):
		return statusNoSuchQueue
	case errors.Is(err, queue.ErrQueueExists):
		return statusQueueExists
	case errors.Is(err, queue.ErrStaleReceipt):
		return statusStaleReceipt
	case errors.Is(err, queue.ErrEmptyQueueName):
		return statusEmptyQueueName
	case errors.Is(err, queue.ErrBatchSize):
		return statusBatchSize
	case errors.Is(err, queue.ErrNotPrivileged):
		return statusNotPrivileged
	case errors.Is(err, queue.ErrBadTransfer):
		return statusBadTransfer
	default:
		return statusError
	}
}

// wireError carries a remote error message while unwrapping to the
// sentinel the status code named, so callers keep matching with
// errors.Is and humans keep the remote detail.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

// statusErr reconstructs an error from a non-OK status code and its
// message.
func statusErr(code byte, msg string) error {
	s, ok := statusSentinels[code]
	if !ok {
		if msg == "" {
			msg = "wire: remote error"
		}
		return errors.New(msg)
	}
	if msg == "" || msg == s.Error() {
		return s
	}
	return &wireError{msg: msg, sentinel: s}
}

// appendMessages encodes a received-message list.
func appendMessages(e *enc, msgs []queue.Message) {
	e.u64(uint64(len(msgs)))
	for i := range msgs {
		e.str(msgs[i].ID)
		e.bytes(msgs[i].Body)
		e.str(msgs[i].ReceiptHandle)
		e.u64(uint64(msgs[i].Receives))
	}
}

// messages decodes a received-message list. Bodies are copied out of
// the frame buffer because the buffer returns to the pool as soon as
// the caller finishes decoding, while queue.Message.Body may be held
// for the whole task execution.
func (d *dec) messages() []queue.Message {
	n := d.len()
	if d.err != nil || n == 0 {
		return nil
	}
	msgs := make([]queue.Message, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		m := queue.Message{ID: d.str()}
		m.Body = append([]byte(nil), d.bytes()...)
		m.ReceiptHandle = d.str()
		m.Receives = int(d.u64())
		msgs = append(msgs, m)
	}
	return msgs
}

// appendStrings encodes a string list (message ids, queue names).
func appendStrings(e *enc, ss []string) {
	e.u64(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

func (d *dec) strs() []string {
	n := d.len()
	if d.err != nil || n == 0 {
		return nil
	}
	ss := make([]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		ss = append(ss, d.str())
	}
	return ss
}

// readFrameBody reads one frame off a stream into a pooled buffer and
// returns the body (length prefix stripped). The caller owns the
// buffer and must release it with putBuf.
func readFrameBody(br *bufio.Reader, max int) (*[]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > uint64(max) {
		return nil, ErrFrameTooBig
	}
	bp := getBuf()
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	} else {
		*bp = (*bp)[:n]
	}
	if _, err := io.ReadFull(br, *bp); err != nil {
		putBuf(bp)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return bp, nil
}

// writeFrame writes one frame — prefix plus pre-encoded body — to a
// buffered writer without flushing (the writer goroutines coalesce
// flushes across pipelined frames).
func writeFrame(bw *bufio.Writer, body []byte) error {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(body)))
	if _, err := bw.Write(tmp[:n]); err != nil {
		return err
	}
	_, err := bw.Write(body)
	return err
}

// encodeRequest assembles a request frame body into a pooled buffer.
func encodeRequest(op byte, corrID uint64, queueName, trace string, payload func(*enc)) *[]byte {
	bp := getBuf()
	e := enc{b: *bp}
	e.byte(op)
	e.u64(corrID)
	e.str(queueName)
	e.str(trace)
	if payload != nil {
		payload(&e)
	}
	*bp = e.b
	return bp
}
