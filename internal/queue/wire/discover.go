package wire

import (
	"encoding/json"
	"net"
	"net/url"
	"strings"

	"repro/internal/httpx"
)

// DiscoverAddr asks a queue node's JSON face whether it serves the
// wire protocol, via the GET /wire advertisement queue.HTTPHandler
// exposes when configured with a WireAddr. It returns the dialable
// address and true, or false when the node does not advertise one
// (older node, wire face disabled, or unreachable) — the caller then
// stays on HTTP, which is exactly the router's fallback contract.
//
// An advertised address without a host (":8091") is resolved against
// the HTTP base URL's host, so a node that listens on all interfaces
// does not need to know its own public name.
func DiscoverAddr(baseURL string) (string, bool) {
	resp, err := httpx.Client.Get(strings.TrimSuffix(baseURL, "/") + "/wire")
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return "", false
	}
	var out struct {
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.Addr == "" {
		return "", false
	}
	if host, port, err := net.SplitHostPort(out.Addr); err == nil && host == "" {
		if u, err := url.Parse(baseURL); err == nil && u.Hostname() != "" {
			out.Addr = net.JoinHostPort(u.Hostname(), port)
		}
	}
	return out.Addr, true
}
