package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func framesEqual(a, b Frame) bool {
	return a.Op == b.Op && a.CorrID == b.CorrID && a.Queue == b.Queue &&
		a.Trace == b.Trace && bytes.Equal(a.Payload, b.Payload)
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Op: OpCreateQueue, CorrID: 1, Queue: "tasks"},
		{Op: OpSend, CorrID: 1 << 40, Queue: "job-1/tasks", Trace: "t-abc123", Payload: []byte("hello world")},
		{Op: OpReceive, CorrID: 0, Queue: "", Trace: "", Payload: nil},
		{Op: OpTransfer, CorrID: 7, Queue: string(bytes.Repeat([]byte("q"), 300)), Payload: bytes.Repeat([]byte{0xff, 0x00}, 4096)},
	}
	for _, f := range cases {
		enc := EncodeFrame(f)
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("decode(%+v): %v", f, err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if !framesEqual(f, got) {
			t.Fatalf("round trip mismatch: sent %+v got %+v", f, got)
		}
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	full := EncodeFrame(Frame{Op: OpSend, CorrID: 42, Queue: "q", Trace: "t", Payload: []byte("payload")})
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeFrame(full[:i]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", i, len(full))
		}
	}
}

func TestDecodeFrameOversized(t *testing.T) {
	data := binary.AppendUvarint(nil, DefaultMaxFrame+1)
	if _, _, err := DecodeFrame(data); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized declared length: got %v, want ErrFrameTooBig", err)
	}
}

func TestDecodeFrameGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},             // zero-length body: no opcode
		{0x02, 0x00, 0x01}, // valid length, opcode 0
		{0x02, 0xff, 0x01}, // unknown opcode
		{0x05, byte(OpSend), 0x01, 0xff, 0xff, 0xff}, // queue length runs past body
	}
	for _, data := range cases {
		if _, _, err := DecodeFrame(data); err == nil {
			t.Fatalf("garbage %x decoded without error", data)
		}
	}
}

// TestDecLengthBomb verifies a declared collection count far beyond the
// actual bytes is rejected before any allocation is sized by it.
func TestDecLengthBomb(t *testing.T) {
	var e enc
	e.u64(1 << 40) // collection claims 2^40 elements
	d := dec{b: e.b}
	if n := d.len(); d.err == nil {
		t.Fatalf("length bomb accepted: n=%d", n)
	}
}

func TestStatusErrMapping(t *testing.T) {
	for code, sentinel := range statusSentinels {
		if err := statusErr(code, "remote detail: "+sentinel.Error()); !errors.Is(err, sentinel) {
			t.Fatalf("status %d does not unwrap to %v", code, sentinel)
		}
		if err := statusErr(code, ""); !errors.Is(err, sentinel) {
			t.Fatalf("status %d with empty message does not unwrap to %v", code, sentinel)
		}
	}
	if err := statusErr(statusError, "boom"); err == nil || err.Error() != "boom" {
		t.Fatalf("generic status lost its message: %v", err)
	}
}
