// Package wire implements the binary hot-path transport for the queue
// service: a length-prefixed framing protocol plus a pipelined
// connection-pool client (Client) and a listener-side server (Server),
// both speaking the same queue.API the JSON/HTTP face exposes.
//
// # Frame layout
//
// Every frame — request or response — is one uvarint length prefix
// followed by that many body bytes:
//
//	uvarint(len(body)) || body
//	body = op(1) || uvarint(correlation id) || str(queue) || str(trace) || payload
//	str  = uvarint(len) || bytes
//
// The correlation id pairs a response with its request so responses may
// return out of order (pipelining); the trace string carries the same
// request id the HTTP face moves in the X-Trace-Id header. The payload
// is op-specific (see protocol.go). Response frames echo the request's
// op and correlation id and carry a status byte first: 0 for success,
// otherwise an error code that maps back to the queue package's
// sentinel errors, followed by the error message.
//
// # Pipelining model
//
// A connection carries many requests concurrently: the client assigns
// each call a fresh correlation id, one writer goroutine coalesces
// frames into large writes, and one reader goroutine demultiplexes
// responses to waiting callers by id. Long polls therefore do not
// head-of-line block unrelated traffic on the same connection. The
// server mirrors the pair — one reader spawning a handler per request,
// one writer serializing responses — so a slow receive never stalls the
// pipe.
//
// # When JSON, when wire
//
// The HTTP/JSON face stays authoritative for debuggability (curl-able,
// human-readable, trace headers visible in any proxy log); the wire
// face exists purely because per-request JSON encoding and HTTP framing
// dominate the hot path at high shard counts. Components keep
// programming against queue.API and pick a transport at deployment
// time; shard.Router prefers a wire endpoint when the shard advertises
// one and falls back to HTTP otherwise.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Request opcodes. A response frame reuses the opcode of the request it
// answers.
const (
	OpCreateQueue byte = iota + 1
	OpDeleteQueue
	OpListQueues
	OpSend
	OpSendBatch
	OpReceive
	OpDelete
	OpDeleteBatch
	OpChangeVisibility
	OpCount
	OpPurge
	OpRequests
	OpRequestsFor
	OpTransfer
	opMax // one past the last valid opcode
)

// opNames label per-op telemetry series and error messages.
var opNames = map[byte]string{
	OpCreateQueue:      "create_queue",
	OpDeleteQueue:      "delete_queue",
	OpListQueues:       "list_queues",
	OpSend:             "send",
	OpSendBatch:        "send_batch",
	OpReceive:          "receive",
	OpDelete:           "delete",
	OpDeleteBatch:      "delete_batch",
	OpChangeVisibility: "change_visibility",
	OpCount:            "count",
	OpPurge:            "purge",
	OpRequests:         "requests",
	OpRequestsFor:      "requests_for",
	OpTransfer:         "transfer",
}

// DefaultMaxFrame caps one frame's body. Queue bodies are task
// descriptors, not blobs, so 16 MiB leaves two orders of magnitude of
// headroom while bounding what a corrupt or hostile peer can make the
// reader allocate.
const DefaultMaxFrame = 16 << 20

// Framing errors. ErrShortFrame reports a frame that declares more
// bytes than are present — for a stream reader that simply means "read
// more", for DecodeFrame on a finite buffer it is corruption.
var (
	ErrShortFrame   = errors.New("wire: truncated frame")
	ErrFrameTooBig  = fmt.Errorf("wire: frame exceeds %d bytes", DefaultMaxFrame)
	ErrCorruptFrame = errors.New("wire: corrupt frame")
)

// Frame is one decoded protocol frame.
type Frame struct {
	Op      byte
	CorrID  uint64
	Queue   string
	Trace   string
	Payload []byte
}

// AppendFrame appends f's wire encoding (length prefix included) to dst
// and returns the extended slice.
func AppendFrame(dst []byte, f *Frame) []byte {
	// Body is assembled after a reserved gap for the length prefix so
	// encoding stays single-pass: write a maximal-width prefix, encode,
	// then re-encode the true length over the gap... varints are not
	// fixed width, so instead encode the body into the scratch region
	// past len(dst) and prefix it explicitly.
	body := encodeBody(nil, f)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

func encodeBody(dst []byte, f *Frame) []byte {
	e := enc{b: dst}
	e.byte(f.Op)
	e.u64(f.CorrID)
	e.str(f.Queue)
	e.str(f.Trace)
	e.b = append(e.b, f.Payload...)
	return e.b
}

// EncodeFrame returns f's full wire encoding.
func EncodeFrame(f Frame) []byte { return AppendFrame(nil, &f) }

// DecodeFrame decodes one frame from the front of data, returning the
// frame and the number of bytes consumed. Queue and Trace are copied
// out; Payload aliases data and is only valid while data is. Truncated,
// oversized, or garbage input returns an error without panicking and
// without reading past len(data).
func DecodeFrame(data []byte) (Frame, int, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return Frame{}, 0, ErrShortFrame
	}
	if n > DefaultMaxFrame {
		return Frame{}, 0, ErrFrameTooBig
	}
	if uint64(len(data)-used) < n {
		return Frame{}, 0, ErrShortFrame
	}
	f, err := parseBody(data[used : used+int(n)])
	if err != nil {
		return Frame{}, 0, err
	}
	return f, used + int(n), nil
}

// parseBody decodes a frame body (everything after the length prefix).
func parseBody(body []byte) (Frame, error) {
	d := dec{b: body}
	f := Frame{Op: d.byte(), CorrID: d.u64()}
	f.Queue = d.str()
	f.Trace = d.str()
	f.Payload = d.rest()
	if d.err != nil {
		return Frame{}, d.err
	}
	if f.Op == 0 || f.Op >= opMax {
		return Frame{}, fmt.Errorf("%w: unknown op %d", ErrCorruptFrame, f.Op)
	}
	return f, nil
}

// enc builds frame payloads. Its buffer comes from the shared pool;
// callers release it with putBuf after the bytes are on the wire.
type enc struct{ b []byte }

func (e *enc) byte(c byte)    { e.b = append(e.b, c) }
func (e *enc) u64(v uint64)   { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)    { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) bytes(p []byte) { e.u64(uint64(len(p))); e.b = append(e.b, p...) }
func (e *enc) str(s string)   { e.u64(uint64(len(s))); e.b = append(e.b, s...) }

// dec consumes frame payloads. The first malformed field latches err
// and every later read returns a zero value, so call sites stay linear
// and check err once at the end. Declared lengths are validated against
// the remaining bytes before any slice is taken, so garbage cannot
// cause an over-read or an allocation bomb.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrCorruptFrame
	}
}

func (d *dec) byte() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	c := d.b[0]
	d.b = d.b[1:]
	return c
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// len reads a collection count and bounds it by the bytes remaining
// (each element costs at least one byte), rejecting length bombs.
func (d *dec) len() int {
	n := d.u64()
	if d.err == nil && n > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

// bytes returns the next length-prefixed field aliasing the underlying
// buffer; callers that outlive the buffer must copy.
func (d *dec) bytes() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	p := d.b[:n:n]
	d.b = d.b[n:]
	return p
}

func (d *dec) str() string { return string(d.bytes()) }

func (d *dec) rest() []byte {
	p := d.b
	d.b = nil
	return p
}

// bufPool recycles frame scratch buffers across requests — the
// low-alloc receive path. Buffers above keepBuf bytes are dropped
// rather than pooled so one giant frame does not pin memory forever.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

const keepBuf = 1 << 20

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > keepBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
