package wire

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/queue"
	"repro/internal/telemetry"
)

// startServer serves svc over the wire protocol on a fresh loopback
// listener and returns its address.
func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func dialTest(t *testing.T, addr string, opt Options) *Client {
	t.Helper()
	c := Dial(addr, opt)
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClientServerAPISurface exercises every queue.API operation over
// a real TCP connection and checks the results match an in-process
// Service call for call.
func TestClientServerAPISurface(t *testing.T) {
	svc := queue.NewService(queue.Config{})
	addr := startServer(t, &Server{Service: svc})
	c := dialTest(t, addr, Options{})

	if err := c.CreateQueue("tasks"); err != nil {
		t.Fatalf("CreateQueue: %v", err)
	}
	if err := c.CreateQueue("tasks"); !errors.Is(err, queue.ErrQueueExists) {
		t.Fatalf("duplicate CreateQueue: got %v, want ErrQueueExists", err)
	}
	if err := c.CreateQueue(""); !errors.Is(err, queue.ErrEmptyQueueName) {
		t.Fatalf("empty CreateQueue: got %v, want ErrEmptyQueueName", err)
	}
	if err := c.CreateQueue("other"); err != nil {
		t.Fatalf("CreateQueue other: %v", err)
	}
	if names := c.ListQueues(); len(names) != 2 || names[0] != "other" || names[1] != "tasks" {
		t.Fatalf("ListQueues: %v", names)
	}

	id, err := c.SendMessage("tasks", []byte("one"))
	if err != nil || id == "" {
		t.Fatalf("SendMessage: id=%q err=%v", id, err)
	}
	ids, err := c.SendMessageBatch("tasks", [][]byte{[]byte("two"), []byte("three")})
	if err != nil || len(ids) != 2 {
		t.Fatalf("SendMessageBatch: ids=%v err=%v", ids, err)
	}
	if _, err := c.SendMessageBatch("tasks", nil); !errors.Is(err, queue.ErrBatchSize) {
		t.Fatalf("empty batch: got %v, want ErrBatchSize", err)
	}
	if visible, inflight, err := c.ApproximateCount("tasks"); err != nil || visible != 3 || inflight != 0 {
		t.Fatalf("ApproximateCount: %d/%d err=%v", visible, inflight, err)
	}

	seen := map[string]string{} // body -> receipt
	for i := 0; i < 3; i++ {
		m, ok, err := c.ReceiveMessage("tasks", time.Minute)
		if err != nil || !ok {
			t.Fatalf("ReceiveMessage %d: ok=%v err=%v", i, ok, err)
		}
		if m.Receives != 1 || m.ReceiptHandle == "" {
			t.Fatalf("ReceiveMessage %d: %+v", i, m)
		}
		seen[string(m.Body)] = m.ReceiptHandle
	}
	if len(seen) != 3 {
		t.Fatalf("got bodies %v, want 3 distinct", seen)
	}
	if _, _, err := c.ReceiveMessage("missing", 0); !errors.Is(err, queue.ErrNoSuchQueue) {
		t.Fatalf("receive on missing queue: got %v, want ErrNoSuchQueue", err)
	}

	if err := c.ChangeVisibility("tasks", seen["one"], time.Hour); err != nil {
		t.Fatalf("ChangeVisibility: %v", err)
	}
	if err := c.ChangeVisibility("tasks", "bogus", time.Hour); !errors.Is(err, queue.ErrStaleReceipt) {
		t.Fatalf("bogus ChangeVisibility: got %v, want ErrStaleReceipt", err)
	}
	if err := c.DeleteMessage("tasks", seen["one"]); err != nil {
		t.Fatalf("DeleteMessage: %v", err)
	}
	verdicts, err := c.DeleteMessageBatch("tasks", []string{seen["two"], "bogus", seen["three"]})
	if err != nil {
		t.Fatalf("DeleteMessageBatch: %v", err)
	}
	if verdicts[0] != nil || verdicts[2] != nil || !errors.Is(verdicts[1], queue.ErrStaleReceipt) {
		t.Fatalf("DeleteMessageBatch verdicts: %v", verdicts)
	}

	if _, err := c.SendMessage("other", []byte("x")); err != nil {
		t.Fatalf("send other: %v", err)
	}
	if err := c.Purge("other"); err != nil {
		t.Fatalf("Purge: %v", err)
	}
	if visible, inflight, _ := c.ApproximateCount("other"); visible+inflight != 0 {
		t.Fatalf("purged queue still holds %d/%d", visible, inflight)
	}

	// Billing flows through untouched: the wire face bills nothing of
	// its own, so remote and local counts agree exactly.
	if got, want := c.APIRequests(), svc.APIRequests(); got != want {
		t.Fatalf("APIRequests over wire %d != local %d", got, want)
	}
	if got, want := c.APIRequestsFor("tasks"), svc.APIRequestsFor("tasks"); got != want || got == 0 {
		t.Fatalf("APIRequestsFor over wire %d != local %d", got, want)
	}

	if err := c.DeleteQueue("other"); err != nil {
		t.Fatalf("DeleteQueue: %v", err)
	}
	if err := c.DeleteQueue("other"); !errors.Is(err, queue.ErrNoSuchQueue) {
		t.Fatalf("double DeleteQueue: got %v, want ErrNoSuchQueue", err)
	}
}

// TestLargeBodyRoundTrip pushes a body well past the pooled-buffer
// retention cap through send and receive.
func TestLargeBodyRoundTrip(t *testing.T) {
	svc := queue.NewService(queue.Config{})
	addr := startServer(t, &Server{Service: svc})
	c := dialTest(t, addr, Options{})
	if err := c.CreateQueue("big"); err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte{0xa5, 0x5a, 0x00}, (2<<20)/3)
	if _, err := c.SendMessage("big", body); err != nil {
		t.Fatalf("send 2MiB body: %v", err)
	}
	m, ok, err := c.ReceiveMessage("big", time.Minute)
	if err != nil || !ok {
		t.Fatalf("receive: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(m.Body, body) {
		t.Fatalf("2MiB body corrupted in transit (len %d vs %d)", len(m.Body), len(body))
	}
}

// TestPipeliningNoHeadOfLineBlocking proves a long poll parked on one
// queue does not stall other requests sharing the same single
// connection — the property the correlation-id demux exists for.
func TestPipeliningNoHeadOfLineBlocking(t *testing.T) {
	svc := queue.NewService(queue.Config{})
	addr := startServer(t, &Server{Service: svc})
	c := dialTest(t, addr, Options{Conns: 1})
	for _, q := range []string{"empty", "busy"} {
		if err := c.CreateQueue(q); err != nil {
			t.Fatal(err)
		}
	}

	pollDone := make(chan error, 1)
	go func() {
		// Parks server-side for the full wait: nothing is ever sent.
		_, ok, err := c.ReceiveMessageWait("empty", time.Minute, 3*time.Second)
		if ok {
			err = errors.New("long poll received a message from an empty queue")
		}
		pollDone <- err
	}()

	// While the poll is parked, the same connection must keep serving.
	start := time.Now()
	deadline := time.After(2 * time.Second)
	for i := 0; i < 20; i++ {
		select {
		case <-deadline:
			t.Fatalf("pipelined traffic stalled behind a long poll (%d cycles in %v)", i, time.Since(start))
		default:
		}
		if _, err := c.SendMessage("busy", []byte("x")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		m, ok, err := c.ReceiveMessage("busy", time.Minute)
		if err != nil || !ok {
			t.Fatalf("receive %d: ok=%v err=%v", i, ok, err)
		}
		if err := c.DeleteMessage("busy", m.ReceiptHandle); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if err := <-pollDone; err != nil {
		t.Fatalf("long poll: %v", err)
	}
}

// TestConcurrentPipelinedLoad hammers one client from many goroutines;
// with the race detector on (CI matrix) this also vets the demux and
// buffer-pool discipline.
func TestConcurrentPipelinedLoad(t *testing.T) {
	svc := queue.NewService(queue.Config{})
	reg := telemetry.NewRegistry()
	addr := startServer(t, &Server{Service: svc, Metrics: reg})
	c := dialTest(t, addr, Options{Conns: 2, Metrics: reg})

	const workers, cycles = 16, 25
	for w := 0; w < workers; w++ {
		if err := c.CreateQueue(fmt.Sprintf("q%d", w%4)); err != nil && !errors.Is(err, queue.ErrQueueExists) {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qname := fmt.Sprintf("q%d", w%4)
			for i := 0; i < cycles; i++ {
				body := []byte(fmt.Sprintf("w%d-c%d", w, i))
				if _, err := c.SendMessage(qname, body); err != nil {
					errCh <- fmt.Errorf("send: %w", err)
					return
				}
				m, ok, err := c.ReceiveMessageWait(qname, time.Minute, 5*time.Second)
				if err != nil || !ok {
					errCh <- fmt.Errorf("receive: ok=%v err=%w", ok, err)
					return
				}
				if err := c.DeleteMessage(qname, m.ReceiptHandle); err != nil && !errors.Is(err, queue.ErrStaleReceipt) {
					errCh <- fmt.Errorf("delete: %w", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	total := 0
	for w := 0; w < 4; w++ {
		visible, inflight, err := c.ApproximateCount(fmt.Sprintf("q%d", w))
		if err != nil {
			t.Fatal(err)
		}
		total += visible + inflight
	}
	if total != 0 {
		t.Fatalf("%d messages left after all workers drained their own traffic", total)
	}
}

// TestTransferAuth checks the privileged transfer opcode end to end:
// token rotation, wrong tokens, missing tokens, and delivery-count
// preservation.
func TestTransferAuth(t *testing.T) {
	svc := queue.NewService(queue.Config{})
	addr := startServer(t, &Server{Service: svc, AdminToken: "new", AdminTokens: []string{"old"}})
	if err := svc.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}

	for _, token := range []string{"new", "old"} {
		c := dialTest(t, addr, Options{AdminToken: token})
		ids, err := c.TransferInBatch("q", []queue.TransferItem{{Body: []byte("moved-" + token), Receives: 4}})
		if err != nil || len(ids) != 1 {
			t.Fatalf("transfer with token %q: ids=%v err=%v", token, ids, err)
		}
	}
	m, ok, err := svc.ReceiveMessage("q", time.Minute)
	if err != nil || !ok {
		t.Fatalf("receive transferred: %v", err)
	}
	if m.Receives != 5 {
		t.Fatalf("transferred message Receives=%d, want 5 (4 prior + this delivery)", m.Receives)
	}

	wrong := dialTest(t, addr, Options{AdminToken: "stolen"})
	if _, err := wrong.TransferInBatch("q", []queue.TransferItem{{Body: []byte("x")}}); !errors.Is(err, queue.ErrNotPrivileged) {
		t.Fatalf("wrong token: got %v, want ErrNotPrivileged", err)
	}
	none := dialTest(t, addr, Options{})
	if _, err := none.TransferInBatch("q", []queue.TransferItem{{Body: []byte("x")}}); !errors.Is(err, queue.ErrNotPrivileged) {
		t.Fatalf("no token: got %v, want ErrNotPrivileged (local fast-fail)", err)
	}
}

// TestReconnectWithBackoff kills the server under a live client and
// brings a new one up on the same address: calls must fail fast with
// ErrUnavailable while it is down (backoff, no hanging dials) and
// succeed again once it is back.
func TestReconnectWithBackoff(t *testing.T) {
	svc := queue.NewService(queue.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := &Server{Service: svc}
	go srv.Serve(ln)

	c := dialTest(t, addr, Options{Conns: 1, MaxBackoff: 20 * time.Millisecond, DialTimeout: 200 * time.Millisecond})
	if err := c.CreateQueue("q"); err != nil {
		t.Fatalf("create before outage: %v", err)
	}

	srv.Close()
	// The in-flight generation dies; subsequent calls must surface
	// ErrUnavailable quickly rather than hanging.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.SendMessage("q", []byte("x"))
		if errors.Is(err, ErrUnavailable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("outage never surfaced as ErrUnavailable (last err: %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	srv2 := &Server{Service: svc}
	go srv2.Serve(ln2)
	t.Cleanup(func() { srv2.Close() })

	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := c.SendMessage("q", []byte("back")); err == nil {
			return // reconnected
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected after the server came back")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFallbackToHTTP points a wire client at a dead port with a JSON
// fallback configured: every call must transparently succeed over
// HTTP, and protocol errors must keep their sentinels.
func TestFallbackToHTTP(t *testing.T) {
	svc := queue.NewService(queue.Config{})
	hs := httptest.NewServer(&queue.HTTPHandler{Service: svc, AdminToken: "tok"})
	t.Cleanup(hs.Close)

	// A listener that is immediately closed yields a port nothing
	// serves — the wire dial is guaranteed to fail.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	c := dialTest(t, deadAddr, Options{
		DialTimeout: 200 * time.Millisecond,
		AdminToken:  "tok",
		Fallback:    &queue.HTTPClient{BaseURL: hs.URL, AdminToken: "tok"},
	})
	if err := c.CreateQueue("q"); err != nil {
		t.Fatalf("CreateQueue via fallback: %v", err)
	}
	if err := c.CreateQueue("q"); !errors.Is(err, queue.ErrQueueExists) {
		// The HTTP face treats re-create as idempotent success; accept
		// either contract but never a transport error.
		if err != nil {
			t.Fatalf("duplicate create via fallback: %v", err)
		}
	}
	if _, err := c.SendMessage("q", []byte("json-carried")); err != nil {
		t.Fatalf("SendMessage via fallback: %v", err)
	}
	m, ok, err := c.ReceiveMessage("q", time.Minute)
	if err != nil || !ok || string(m.Body) != "json-carried" {
		t.Fatalf("ReceiveMessage via fallback: ok=%v err=%v body=%q", ok, err, m.Body)
	}
	if err := c.DeleteMessage("q", m.ReceiptHandle); err != nil {
		t.Fatalf("DeleteMessage via fallback: %v", err)
	}
	if _, err := c.TransferInBatch("q", []queue.TransferItem{{Body: []byte("t"), Receives: 2}}); err != nil {
		t.Fatalf("TransferInBatch via fallback: %v", err)
	}
	if _, _, err := c.ReceiveMessage("missing", 0); !errors.Is(err, queue.ErrNoSuchQueue) {
		t.Fatalf("sentinel lost through fallback: %v", err)
	}
}

// traceSvc records every trace ID scoped onto it.
type traceSvc struct {
	*queue.Service
	mu     sync.Mutex
	traces []string
}

func (t *traceSvc) WithTrace(id string) queue.API {
	t.mu.Lock()
	t.traces = append(t.traces, id)
	t.mu.Unlock()
	return t.Service
}

// TestTracePropagation checks the frame's trace field reaches the
// server-side TraceScoper, the binary analogue of X-Trace-Id.
func TestTracePropagation(t *testing.T) {
	ts := &traceSvc{Service: queue.NewService(queue.Config{})}
	addr := startServer(t, &Server{Service: ts})
	c := dialTest(t, addr, Options{})

	scoped := c.WithTrace("trace-42")
	if err := scoped.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := scoped.SendMessage("q", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Untraced calls must not scope.
	if _, _, err := c.ApproximateCount("q"); err != nil {
		t.Fatal(err)
	}

	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.traces) != 2 {
		t.Fatalf("server scoped %d times, want 2: %v", len(ts.traces), ts.traces)
	}
	for _, tr := range ts.traces {
		if tr != "trace-42" {
			t.Fatalf("trace %q arrived, want trace-42", tr)
		}
	}
}

// TestWireMetrics checks the telemetry surface: per-op histograms
// observe traffic and the connection gauges track open conns.
func TestWireMetrics(t *testing.T) {
	svc := queue.NewService(queue.Config{})
	reg := telemetry.NewRegistry()
	addr := startServer(t, &Server{Service: svc, Metrics: reg})
	c := Dial(addr, Options{Conns: 1, Metrics: reg})

	if err := c.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.SendMessage("q", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n := reg.Histogram(telemetry.Label("wire_op_ns", "op", "send")).Count(); n != 5 {
		t.Fatalf("wire_op_ns{op=send} observed %d, want 5", n)
	}
	if g := reg.Gauge(telemetry.Label("wire_client_conns", "peer", addr)).Value(); g != 1 {
		t.Fatalf("wire_client_conns=%d with one live conn", g)
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge(telemetry.Label("wire_client_conns", "peer", addr)).Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("wire_client_conns never returned to 0 after Close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
