package wire

import (
	"bufio"
	"crypto/subtle"
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/queue"
	"repro/internal/telemetry"
)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("wire: server closed")

// Server serves the wire protocol over a listener, dispatching every
// frame to a queue.API — a local Service or a shard router, the same
// backends HTTPHandler fronts. One Server may serve many listeners.
type Server struct {
	Service queue.API
	// AdminToken / AdminTokens provision the privileged transfer
	// opcode with the same semantics as HTTPHandler: requests carry one
	// token, any provisioned token is accepted (rotation), and no
	// provisioned tokens means every transfer is rejected.
	AdminToken  string
	AdminTokens []string
	// Metrics, when set, registers wire_op_ns{op=...} latency
	// histograms, a wire_conns open-connection gauge, and a
	// wire_frames counter.
	Metrics *telemetry.Registry
	// MaxFrame caps one frame body (default DefaultMaxFrame).
	MaxFrame int
	// MaxConcurrent caps in-flight handlers per connection (default
	// 256); excess frames wait in the reader, applying backpressure
	// through the transport instead of unbounded goroutine growth.
	MaxConcurrent int

	initOnce sync.Once
	met      *serverMetrics

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*srvConn]struct{}
	closed bool
}

type serverMetrics struct {
	ops    map[byte]*telemetry.Histogram
	conns  *telemetry.Gauge
	frames *telemetry.Counter
}

func (s *Server) init() {
	s.initOnce.Do(func() {
		s.lns = make(map[net.Listener]struct{})
		s.conns = make(map[*srvConn]struct{})
		if s.MaxFrame <= 0 {
			s.MaxFrame = DefaultMaxFrame
		}
		if s.MaxConcurrent <= 0 {
			s.MaxConcurrent = 256
		}
		if s.Metrics != nil {
			m := &serverMetrics{
				ops:    make(map[byte]*telemetry.Histogram, len(opNames)),
				conns:  s.Metrics.Gauge("wire_conns"),
				frames: s.Metrics.Counter("wire_frames"),
			}
			for op, name := range opNames {
				m.ops[op] = s.Metrics.Histogram(telemetry.Label("wire_op_ns", "op", name))
			}
			s.met = m
		}
	})
}

// tokenAccepted mirrors HTTPHandler.tokenAccepted: constant-time
// comparison against every provisioned token, no early exit.
func (s *Server) tokenAccepted(token string) bool {
	match := 0
	if s.AdminToken != "" {
		match |= subtle.ConstantTimeCompare([]byte(token), []byte(s.AdminToken))
	}
	for _, t := range s.AdminTokens {
		if t == "" {
			continue
		}
		match |= subtle.ConstantTimeCompare([]byte(token), []byte(t))
	}
	return match == 1
}

// Serve accepts connections on ln until the listener fails or the
// server is closed. It blocks; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.init()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		c := &srvConn{
			srv:     s,
			nc:      nc,
			br:      bufio.NewReaderSize(nc, 64<<10),
			bw:      bufio.NewWriterSize(nc, 64<<10),
			writeCh: make(chan *[]byte, 64),
			done:    make(chan struct{}),
			sem:     make(chan struct{}, s.MaxConcurrent),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		if s.met != nil {
			s.met.conns.Add(1)
		}
		go c.serve()
	}
}

// Close stops every listener and tears down every open connection.
func (s *Server) Close() error {
	s.init()
	s.mu.Lock()
	s.closed = true
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.shutdown()
	}
	return nil
}

// srvConn is one accepted connection: a reader loop spawning a handler
// goroutine per request frame, and a writer goroutine serializing
// response frames with coalesced flushes.
type srvConn struct {
	srv       *Server
	nc        net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	writeCh   chan *[]byte
	done      chan struct{}
	closeOnce sync.Once
	sem       chan struct{}
}

func (c *srvConn) shutdown() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.nc.Close()
	})
}

func (c *srvConn) serve() {
	defer func() {
		c.shutdown()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		if c.srv.met != nil {
			c.srv.met.conns.Add(-1)
		}
	}()
	go c.writer()
	for {
		bp, err := readFrameBody(c.br, c.srv.MaxFrame)
		if err != nil {
			return
		}
		f, err := parseBody(*bp)
		if err != nil {
			// Framing is broken; there is no way to answer (the
			// correlation id may not have decoded), so drop the conn
			// and let the client's reconnect discipline take over.
			putBuf(bp)
			return
		}
		if c.srv.met != nil {
			c.srv.met.frames.Inc()
		}
		select {
		case c.sem <- struct{}{}:
		case <-c.done:
			putBuf(bp)
			return
		}
		go func() {
			defer func() { <-c.sem }()
			c.handle(f, bp)
		}()
	}
}

// writer drains response frames, coalescing every frame already queued
// into one flush — under pipelining this batches many small responses
// per syscall.
func (c *srvConn) writer() {
	for {
		select {
		case bp := <-c.writeCh:
			err := writeFrame(c.bw, *bp)
			putBuf(bp)
			for err == nil {
				select {
				case bp := <-c.writeCh:
					err = writeFrame(c.bw, *bp)
					putBuf(bp)
					continue
				default:
				}
				break
			}
			if err == nil {
				err = c.bw.Flush()
			}
			if err != nil {
				c.shutdown()
				return
			}
		case <-c.done:
			return
		}
	}
}

// handle dispatches one request frame and queues its response. It owns
// reqBuf (the frame's backing buffer) until the service call returns —
// OpSend payloads alias it — and releases it before the response is
// encoded.
func (c *srvConn) handle(f Frame, reqBuf *[]byte) {
	svc := c.srv.Service
	if f.Trace != "" {
		if ts, ok := svc.(queue.TraceScoper); ok {
			svc = ts.WithTrace(f.Trace)
		}
	}
	var start time.Time
	if c.srv.met != nil {
		start = time.Now()
	}

	rp := getBuf()
	e := enc{b: (*rp)[:0]}
	e.byte(f.Op)
	e.u64(f.CorrID)
	e.str("") // queue: responses carry no routing fields
	e.str("") // trace
	c.dispatch(svc, f, &e)
	putBuf(reqBuf)
	*rp = e.b

	if c.srv.met != nil {
		c.srv.met.ops[f.Op].Observe(time.Since(start))
	}
	select {
	case c.writeCh <- rp:
	case <-c.done:
		putBuf(rp)
	}
}

// fail encodes an error response: status code + message.
func fail(e *enc, err error) {
	e.byte(statusFor(err))
	e.str(err.Error())
}

// ok encodes the success status; the caller appends the result payload.
func ok(e *enc) { e.byte(statusOK) }

// dispatch decodes the op-specific payload, invokes the service, and
// encodes the result.
func (c *srvConn) dispatch(svc queue.API, f Frame, e *enc) {
	d := dec{b: f.Payload}
	switch f.Op {
	case OpCreateQueue:
		if err := svc.CreateQueue(f.Queue); err != nil {
			fail(e, err)
			return
		}
		ok(e)
	case OpDeleteQueue:
		if err := svc.DeleteQueue(f.Queue); err != nil {
			fail(e, err)
			return
		}
		ok(e)
	case OpListQueues:
		names := svc.ListQueues()
		ok(e)
		appendStrings(e, names)
	case OpSend:
		id, err := svc.SendMessage(f.Queue, d.rest())
		if err != nil {
			fail(e, err)
			return
		}
		ok(e)
		e.str(id)
	case OpSendBatch:
		n := d.len()
		bodies := make([][]byte, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			bodies = append(bodies, d.bytes())
		}
		if d.err != nil {
			fail(e, ErrCorruptFrame)
			return
		}
		ids, err := svc.SendMessageBatch(f.Queue, bodies)
		if err != nil {
			fail(e, err)
			return
		}
		ok(e)
		appendStrings(e, ids)
	case OpReceive:
		visibility := time.Duration(d.i64())
		wait := time.Duration(d.i64())
		max := int(d.u64())
		if d.err != nil {
			fail(e, ErrCorruptFrame)
			return
		}
		msgs, err := svc.ReceiveMessageBatch(f.Queue, visibility, max, wait)
		if err != nil {
			fail(e, err)
			return
		}
		ok(e)
		appendMessages(e, msgs)
	case OpDelete:
		receipt := d.str()
		if d.err != nil {
			fail(e, ErrCorruptFrame)
			return
		}
		if err := svc.DeleteMessage(f.Queue, receipt); err != nil {
			fail(e, err)
			return
		}
		ok(e)
	case OpDeleteBatch:
		receipts := d.strs()
		if d.err != nil {
			fail(e, ErrCorruptFrame)
			return
		}
		results, err := svc.DeleteMessageBatch(f.Queue, receipts)
		if err != nil {
			fail(e, err)
			return
		}
		ok(e)
		e.u64(uint64(len(results)))
		for _, res := range results {
			if res == nil {
				e.byte(statusOK)
				continue
			}
			e.byte(statusFor(res))
			e.str(res.Error())
		}
	case OpChangeVisibility:
		receipt := d.str()
		dur := time.Duration(d.i64())
		if d.err != nil {
			fail(e, ErrCorruptFrame)
			return
		}
		if err := svc.ChangeVisibility(f.Queue, receipt, dur); err != nil {
			fail(e, err)
			return
		}
		ok(e)
	case OpCount:
		visible, inflight, err := svc.ApproximateCount(f.Queue)
		if err != nil {
			fail(e, err)
			return
		}
		ok(e)
		e.u64(uint64(visible))
		e.u64(uint64(inflight))
	case OpPurge:
		if err := svc.Purge(f.Queue); err != nil {
			fail(e, err)
			return
		}
		ok(e)
	case OpRequests:
		ok(e)
		e.u64(uint64(svc.APIRequests()))
	case OpRequestsFor:
		ok(e)
		e.u64(uint64(svc.APIRequestsFor(f.Queue)))
	case OpTransfer:
		token := d.str()
		n := d.len()
		items := make([]queue.TransferItem, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			it := queue.TransferItem{Body: d.bytes()}
			it.Receives = int(d.i64())
			items = append(items, it)
		}
		if d.err != nil {
			fail(e, ErrCorruptFrame)
			return
		}
		if !c.srv.tokenAccepted(token) {
			// One answer for "not provisioned", "no token", and "wrong
			// token", exactly like the HTTP transfer endpoint.
			fail(e, queue.ErrNotPrivileged)
			return
		}
		tr, okTr := svc.(queue.Transferrer)
		if !okTr {
			fail(e, queue.ErrNotPrivileged)
			return
		}
		ids, err := tr.TransferInBatch(f.Queue, items)
		if err != nil {
			fail(e, err)
			return
		}
		ok(e)
		appendStrings(e, ids)
	default:
		fail(e, ErrCorruptFrame)
	}
}
