package wire

import (
	"fmt"
	"testing"

	"repro/internal/queue"
)

// receiveAllocBudget is the committed allocation budget for decoding
// one full receive-response payload of queue.MaxBatch messages on the
// client: one slice plus three unavoidable per-message allocations
// (the ID string, the receipt string, and the body copy out of the
// pooled frame buffer). The frame buffer itself, the scratch encoder,
// and the call handle are all pooled and must not appear here.
const receiveAllocBudget = 1 + 3*queue.MaxBatch

// TestReceiveDecodeAllocBudget pins the wire receive path's decode
// cost. It regresses if a future change starts copying the frame per
// field, loses the buffer pool, or grows per-message bookkeeping.
func TestReceiveDecodeAllocBudget(t *testing.T) {
	msgs := make([]queue.Message, queue.MaxBatch)
	for i := range msgs {
		msgs[i] = queue.Message{
			ID:            fmt.Sprintf("tasks-%d", i),
			Body:          []byte("task body payload of a plausible size for a dispatch message"),
			ReceiptHandle: fmt.Sprintf("tasks-%d#r1", i),
			Receives:      1,
		}
	}
	var e enc
	e.byte(statusOK)
	appendMessages(&e, msgs)
	payload := e.b

	allocs := testing.AllocsPerRun(200, func() {
		d := dec{b: payload}
		if d.byte() != statusOK {
			t.Fatal("bad status")
		}
		got := d.messages()
		if d.err != nil || len(got) != queue.MaxBatch {
			t.Fatalf("decode failed: %v, %d messages", d.err, len(got))
		}
	})
	if allocs > receiveAllocBudget {
		t.Fatalf("receive decode allocates %.1f per batch, budget %d", allocs, receiveAllocBudget)
	}
}
