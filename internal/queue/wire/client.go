package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/queue"
	"repro/internal/telemetry"
)

// ErrUnavailable marks a transport-level failure — dial refused, peer
// hung up, request timed out, client closed — as opposed to a protocol
// answer like ErrNoSuchQueue. Calls failing with it are retried on the
// configured Fallback transport when one is set; protocol errors never
// are (the remote already answered).
var ErrUnavailable = errors.New("wire: endpoint unavailable")

// Options tunes a Client.
type Options struct {
	// Conns is the connection-pool size (default 4). Pipelining means a
	// few connections carry many in-flight requests; the pool exists to
	// spread load across reader/writer goroutine pairs, not to provide
	// one connection per caller.
	Conns int
	// DialTimeout bounds one connect attempt (default 3s).
	DialTimeout time.Duration
	// RequestTimeout bounds one round trip, excluding any long-poll
	// wait the request itself asks for — receives get RequestTimeout
	// plus their wait (default 30s).
	RequestTimeout time.Duration
	// MaxBackoff caps the reconnect backoff after repeated dial
	// failures (default 2s; the first retry waits 50ms). While a pool
	// slot is backing off, calls through it fail fast with
	// ErrUnavailable instead of queueing behind doomed dials.
	MaxBackoff time.Duration
	// MaxFrame caps one response frame (default DefaultMaxFrame).
	MaxFrame int
	// AdminToken authorizes the privileged transfer opcode, with the
	// same client-side contract as queue.HTTPClient: empty fails
	// transfers locally with ErrNotPrivileged.
	AdminToken string
	// TraceID, when set, rides in every request frame's trace field —
	// the binary equivalent of the X-Trace-Id header. Use WithTrace
	// for scoped views.
	TraceID string
	// Fallback, when set, serves any call that fails at the transport
	// level (ErrUnavailable) — typically the queue.HTTPClient for the
	// same node, making "prefer wire, fall back to JSON" a property of
	// the client rather than every call site.
	Fallback queue.API
	// Metrics, when set, registers a wire_client_conns{peer=addr}
	// open-connection gauge.
	Metrics *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	return o
}

// Client speaks the wire protocol to one endpoint and implements
// queue.API (plus Transferrer and TraceScoper), so it drops in
// anywhere a queue.HTTPClient does — including as a shard backend
// behind shard.Router.
type Client struct {
	p     *pool
	trace string
}

var (
	_ queue.API         = (*Client)(nil)
	_ queue.Transferrer = (*Client)(nil)
	_ queue.TraceScoper = (*Client)(nil)
)

// Dial creates a client for addr ("host:port"). Connections are
// established lazily on first use, so Dial itself cannot fail; an
// unreachable endpoint surfaces as ErrUnavailable (or as Fallback
// traffic) on the first call.
func Dial(addr string, opt Options) *Client {
	opt = opt.withDefaults()
	p := &pool{addr: addr, opt: opt}
	p.conns = make([]*cliConn, opt.Conns)
	for i := range p.conns {
		p.conns[i] = &cliConn{p: p}
	}
	if opt.Metrics != nil {
		p.connGauge = opt.Metrics.Gauge(telemetry.Label("wire_client_conns", "peer", addr))
	}
	return &Client{p: p, trace: opt.TraceID}
}

// Addr returns the endpoint this client dials.
func (c *Client) Addr() string { return c.p.addr }

// Close tears down every pooled connection. In-flight calls fail with
// ErrUnavailable.
func (c *Client) Close() error {
	c.p.closed.Store(true)
	for _, s := range c.p.conns {
		s.mu.Lock()
		g := s.cur
		s.mu.Unlock()
		if g != nil {
			g.fail(ErrUnavailable)
		}
	}
	return nil
}

// WithTrace returns a view whose requests carry traceID, sharing the
// connection pool with the receiver.
func (c *Client) WithTrace(traceID string) queue.API {
	return &Client{p: c.p, trace: traceID}
}

// pool is the shared state behind every trace-scoped view of a client.
type pool struct {
	addr      string
	opt       Options
	next      atomic.Uint64
	conns     []*cliConn
	closed    atomic.Bool
	connGauge *telemetry.Gauge
}

// cliConn is one pool slot: at most one live connection generation,
// plus the reconnect backoff state that outlives generations.
type cliConn struct {
	p       *pool
	mu      sync.Mutex
	cur     *connGen
	retryAt time.Time
	backoff time.Duration
}

// connGen is one connection's lifetime: the writer/reader goroutine
// pair, the pending-call index for correlation-id demux, and a done
// channel closed exactly once when the generation dies.
type connGen struct {
	p         *pool
	nc        net.Conn
	writeCh   chan *[]byte
	done      chan struct{}
	closeOnce sync.Once

	mu      sync.Mutex
	pending map[uint64]*call
	nextID  uint64
	dead    bool
}

type call struct{ ch chan callRes }

type callRes struct {
	f   Frame
	buf *[]byte
	err error
}

// callPool recycles call handles. The ownership protocol makes reuse
// safe: a call is delivered to at most once (pending lookup+delete is
// atomic under connGen.mu), and the handle returns to the pool only
// after its single delivery was consumed or provably never claimed.
var callPool = sync.Pool{New: func() any { return &call{ch: make(chan callRes, 1)} }}

// get returns the slot's live generation, dialing a fresh connection
// when there is none. Repeated dial failures open the backoff window,
// during which calls fail immediately.
func (s *cliConn) get() (*connGen, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != nil {
		select {
		case <-s.cur.done:
			s.cur = nil
		default:
			return s.cur, nil
		}
	}
	now := time.Now()
	if now.Before(s.retryAt) {
		return nil, fmt.Errorf("%w: %s in reconnect backoff", ErrUnavailable, s.p.addr)
	}
	nc, err := net.DialTimeout("tcp", s.p.addr, s.p.opt.DialTimeout)
	if err != nil {
		if s.backoff == 0 {
			s.backoff = 50 * time.Millisecond
		} else {
			s.backoff *= 2
			if s.backoff > s.p.opt.MaxBackoff {
				s.backoff = s.p.opt.MaxBackoff
			}
		}
		s.retryAt = time.Now().Add(s.backoff)
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnavailable, s.p.addr, err)
	}
	s.backoff, s.retryAt = 0, time.Time{}
	g := &connGen{
		p:       s.p,
		nc:      nc,
		writeCh: make(chan *[]byte, 64),
		done:    make(chan struct{}),
		pending: make(map[uint64]*call),
	}
	if s.p.connGauge != nil {
		s.p.connGauge.Add(1)
	}
	go g.writer()
	go g.reader()
	s.cur = g
	return g, nil
}

// fail kills the generation: wakes the goroutine pair, fails every
// pending call with err, and refuses new registrations.
func (g *connGen) fail(err error) {
	g.closeOnce.Do(func() {
		g.mu.Lock()
		g.dead = true
		pending := g.pending
		g.pending = nil
		g.mu.Unlock()
		close(g.done)
		g.nc.Close()
		if !errors.Is(err, ErrUnavailable) {
			err = fmt.Errorf("%w: %s: %v", ErrUnavailable, g.p.addr, err)
		}
		for _, cl := range pending {
			cl.ch <- callRes{err: err}
		}
		if g.p.connGauge != nil {
			g.p.connGauge.Add(-1)
		}
	})
}

// writer drains request frames, coalescing queued frames into one
// flush — many pipelined requests per syscall.
func (g *connGen) writer() {
	bw := bufio.NewWriterSize(g.nc, 64<<10)
	for {
		select {
		case bp := <-g.writeCh:
			err := writeFrame(bw, *bp)
			putBuf(bp)
			for err == nil {
				select {
				case bp := <-g.writeCh:
					err = writeFrame(bw, *bp)
					putBuf(bp)
					continue
				default:
				}
				break
			}
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				g.fail(err)
				return
			}
		case <-g.done:
			return
		}
	}
}

// reader demultiplexes response frames to their waiting calls by
// correlation id. A frame whose call was abandoned (request timeout)
// is dropped; its buffer goes straight back to the pool.
func (g *connGen) reader() {
	br := bufio.NewReaderSize(g.nc, 64<<10)
	for {
		bp, err := readFrameBody(br, g.p.opt.MaxFrame)
		if err != nil {
			g.fail(err)
			return
		}
		f, err := parseBody(*bp)
		if err != nil {
			putBuf(bp)
			g.fail(err)
			return
		}
		g.mu.Lock()
		cl, okc := g.pending[f.CorrID]
		if okc {
			delete(g.pending, f.CorrID)
		}
		g.mu.Unlock()
		if !okc {
			putBuf(bp)
			continue
		}
		cl.ch <- callRes{f: f, buf: bp}
	}
}

// roundTrip sends one request over the pool and waits for its
// response. extraWait extends the request timeout by any long-poll
// time the request itself asks the server to block for.
func (p *pool) roundTrip(op byte, queueName, trace string, extraWait time.Duration, payload func(*enc)) (callRes, error) {
	if p.closed.Load() {
		return callRes{}, fmt.Errorf("%w: client closed", ErrUnavailable)
	}
	slot := p.conns[p.next.Add(1)%uint64(len(p.conns))]
	g, err := slot.get()
	if err != nil {
		return callRes{}, err
	}
	cl := callPool.Get().(*call)
	g.mu.Lock()
	if g.dead {
		g.mu.Unlock()
		callPool.Put(cl)
		return callRes{}, fmt.Errorf("%w: %s: connection lost", ErrUnavailable, p.addr)
	}
	g.nextID++
	id := g.nextID
	g.pending[id] = cl
	g.mu.Unlock()

	body := encodeRequest(op, id, queueName, trace, payload)
	select {
	case g.writeCh <- body:
	case <-g.done:
		putBuf(body)
		// The generation failed; fail() either already delivered the
		// error to cl or is about to — consume it so cl can be reused.
		res := <-cl.ch
		callPool.Put(cl)
		if res.err == nil {
			res.err = fmt.Errorf("%w: %s: connection lost", ErrUnavailable, p.addr)
		}
		return callRes{}, res.err
	}

	timeout := p.opt.RequestTimeout
	if extraWait > 0 {
		timeout += extraWait
	}
	timer := time.NewTimer(timeout)
	select {
	case res := <-cl.ch:
		timer.Stop()
		callPool.Put(cl)
		return res, res.err
	case <-timer.C:
		g.mu.Lock()
		_, still := g.pending[id]
		if still {
			delete(g.pending, id)
		}
		g.mu.Unlock()
		if !still {
			// The reader (or fail) claimed the call before we could
			// unregister; its delivery is imminent — consume it so the
			// pooled handle is clean.
			res := <-cl.ch
			if res.buf != nil {
				putBuf(res.buf)
			}
		}
		callPool.Put(cl)
		return callRes{}, fmt.Errorf("%w: %s %s timed out after %s", ErrUnavailable, opNames[op], p.addr, timeout)
	}
}

// do performs one round trip and hands back a decoder positioned at
// the OK payload plus the pooled response buffer the decoder reads
// from. The caller extracts its results and releases the buffer with
// putBuf; on error there is nothing to release.
func (c *Client) do(op byte, queueName string, extraWait time.Duration, payload func(*enc)) (dec, *[]byte, error) {
	res, err := c.p.roundTrip(op, queueName, c.trace, extraWait, payload)
	if err != nil {
		return dec{}, nil, err
	}
	d := dec{b: res.f.Payload}
	status := d.byte()
	if d.err != nil || res.f.Op != op {
		putBuf(res.buf)
		return dec{}, nil, fmt.Errorf("%w: %s: corrupt response", ErrUnavailable, c.p.addr)
	}
	if status != statusOK {
		msg := d.str()
		putBuf(res.buf)
		return dec{}, nil, statusErr(status, msg)
	}
	return d, res.buf, nil
}

// finish releases the response buffer and converts any payload-decode
// underflow into a transport error (a malformed success payload means
// the peer is broken, not that the queue answered).
func (c *Client) finish(d *dec, buf *[]byte) error {
	err := d.err
	putBuf(buf)
	if err != nil {
		return fmt.Errorf("%w: %s: corrupt response payload", ErrUnavailable, c.p.addr)
	}
	return nil
}

// fallback returns the API to retry err on, or nil when the call must
// not be retried: protocol answers stick, only transport failures move
// to the fallback. The view is trace-scoped when this client is.
func (c *Client) fallback(err error) queue.API {
	if c.p.opt.Fallback == nil || !errors.Is(err, ErrUnavailable) {
		return nil
	}
	fb := c.p.opt.Fallback
	if c.trace != "" {
		if ts, ok := fb.(queue.TraceScoper); ok {
			fb = ts.WithTrace(c.trace)
		}
	}
	return fb
}

// --- queue.API ---

// CreateQueue registers a queue on the remote service.
func (c *Client) CreateQueue(name string) error {
	d, buf, err := c.do(OpCreateQueue, name, 0, nil)
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.CreateQueue(name)
		}
		return err
	}
	return c.finish(&d, buf)
}

// DeleteQueue removes a queue and its messages.
func (c *Client) DeleteQueue(name string) error {
	d, buf, err := c.do(OpDeleteQueue, name, 0, nil)
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.DeleteQueue(name)
		}
		return err
	}
	return c.finish(&d, buf)
}

// ListQueues returns the remote queue names, or nil when the request
// fails (the interface carries no error return, matching Service).
func (c *Client) ListQueues() []string {
	d, buf, err := c.do(OpListQueues, "", 0, nil)
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.ListQueues()
		}
		return nil
	}
	names := d.strs()
	if c.finish(&d, buf) != nil {
		return nil
	}
	return names
}

// SendMessage enqueues one body as a single frame.
func (c *Client) SendMessage(queueName string, body []byte) (string, error) {
	d, buf, err := c.do(OpSend, queueName, 0, func(e *enc) { e.b = append(e.b, body...) })
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.SendMessage(queueName, body)
		}
		return "", err
	}
	id := d.str()
	if err := c.finish(&d, buf); err != nil {
		return "", err
	}
	return id, nil
}

// SendMessageBatch enqueues up to queue.MaxBatch bodies in one frame,
// billed as one request by the remote service.
func (c *Client) SendMessageBatch(queueName string, bodies [][]byte) ([]string, error) {
	d, buf, err := c.do(OpSendBatch, queueName, 0, func(e *enc) {
		e.u64(uint64(len(bodies)))
		for _, b := range bodies {
			e.bytes(b)
		}
	})
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.SendMessageBatch(queueName, bodies)
		}
		return nil, err
	}
	ids := d.strs()
	if err := c.finish(&d, buf); err != nil {
		return nil, err
	}
	return ids, nil
}

// receive is the shared receive core mirroring Service.receiveBatchWait.
func (c *Client) receive(queueName string, visibility time.Duration, max int, wait time.Duration) ([]queue.Message, error) {
	d, buf, err := c.do(OpReceive, queueName, wait, func(e *enc) {
		e.i64(int64(visibility))
		e.i64(int64(wait))
		e.u64(uint64(max))
	})
	if err != nil {
		return nil, err
	}
	msgs := d.messages()
	if err := c.finish(&d, buf); err != nil {
		return nil, err
	}
	return msgs, nil
}

// ReceiveMessage pops one visible message without waiting.
func (c *Client) ReceiveMessage(queueName string, visibility time.Duration) (queue.Message, bool, error) {
	return c.ReceiveMessageWait(queueName, visibility, 0)
}

// ReceiveMessageWait pops one message, long-polling up to wait. The
// request deadline stretches by wait so a long poll is not mistaken
// for a dead connection.
func (c *Client) ReceiveMessageWait(queueName string, visibility, wait time.Duration) (queue.Message, bool, error) {
	msgs, err := c.receive(queueName, visibility, 1, wait)
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.ReceiveMessageWait(queueName, visibility, wait)
		}
		return queue.Message{}, false, err
	}
	if len(msgs) == 0 {
		return queue.Message{}, false, nil
	}
	return msgs[0], true, nil
}

// ReceiveMessageBatch receives up to max messages in one frame.
func (c *Client) ReceiveMessageBatch(queueName string, visibility time.Duration, max int, wait time.Duration) ([]queue.Message, error) {
	msgs, err := c.receive(queueName, visibility, max, wait)
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.ReceiveMessageBatch(queueName, visibility, max, wait)
		}
		return nil, err
	}
	return msgs, nil
}

// DeleteMessage acknowledges one message by receipt handle.
func (c *Client) DeleteMessage(queueName, receiptHandle string) error {
	d, buf, err := c.do(OpDelete, queueName, 0, func(e *enc) { e.str(receiptHandle) })
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.DeleteMessage(queueName, receiptHandle)
		}
		return err
	}
	return c.finish(&d, buf)
}

// DeleteMessageBatch acknowledges up to queue.MaxBatch messages in one
// frame; per-receipt verdicts come back positionally, nil for success.
func (c *Client) DeleteMessageBatch(queueName string, receipts []string) ([]error, error) {
	d, buf, err := c.do(OpDeleteBatch, queueName, 0, func(e *enc) { appendStrings(e, receipts) })
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.DeleteMessageBatch(queueName, receipts)
		}
		return nil, err
	}
	n := d.len()
	results := make([]error, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		code := d.byte()
		if code == statusOK {
			results = append(results, nil)
			continue
		}
		results = append(results, statusErr(code, d.str()))
	}
	if err := c.finish(&d, buf); err != nil {
		return nil, err
	}
	return results, nil
}

// ChangeVisibility extends or shrinks an in-flight message's lease.
func (c *Client) ChangeVisibility(queueName, receiptHandle string, dur time.Duration) error {
	d, buf, err := c.do(OpChangeVisibility, queueName, 0, func(e *enc) {
		e.str(receiptHandle)
		e.i64(int64(dur))
	})
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.ChangeVisibility(queueName, receiptHandle, dur)
		}
		return err
	}
	return c.finish(&d, buf)
}

// ApproximateCount reports visible and in-flight message counts.
func (c *Client) ApproximateCount(queueName string) (visible, inflight int, err error) {
	d, buf, err := c.do(OpCount, queueName, 0, nil)
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.ApproximateCount(queueName)
		}
		return 0, 0, err
	}
	visible = int(d.u64())
	inflight = int(d.u64())
	if err := c.finish(&d, buf); err != nil {
		return 0, 0, err
	}
	return visible, inflight, nil
}

// Purge removes every message from a queue.
func (c *Client) Purge(queueName string) error {
	d, buf, err := c.do(OpPurge, queueName, 0, nil)
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.Purge(queueName)
		}
		return err
	}
	return c.finish(&d, buf)
}

// APIRequests returns the remote billed-request total, 0 on failure
// (the interface carries no error return, matching Service).
func (c *Client) APIRequests() int64 {
	d, buf, err := c.do(OpRequests, "", 0, nil)
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.APIRequests()
		}
		return 0
	}
	n := int64(d.u64())
	if c.finish(&d, buf) != nil {
		return 0
	}
	return n
}

// APIRequestsFor returns the billed calls addressed to one queue.
func (c *Client) APIRequestsFor(queueName string) int64 {
	d, buf, err := c.do(OpRequestsFor, queueName, 0, nil)
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			return fb.APIRequestsFor(queueName)
		}
		return 0
	}
	n := int64(d.u64())
	if c.finish(&d, buf) != nil {
		return 0
	}
	return n
}

// --- queue.Transferrer ---

// TransferIn enqueues one body with prior deliveries preserved.
func (c *Client) TransferIn(queueName string, body []byte, receives int) (string, error) {
	ids, err := c.TransferInBatch(queueName, []queue.TransferItem{{Body: body, Receives: receives}})
	if err != nil {
		return "", err
	}
	return ids[0], nil
}

// TransferInBatch streams up to queue.MaxBatch count-preserving items
// in one frame — the batched transfer path drain-and-forward migration
// uses instead of per-item HTTP requests. With no AdminToken the call
// fails locally, mirroring queue.HTTPClient: it cannot possibly
// succeed, and the migrator probes this once per batch.
func (c *Client) TransferInBatch(queueName string, items []queue.TransferItem) ([]string, error) {
	if len(items) == 0 || len(items) > queue.MaxBatch {
		return nil, queue.ErrBatchSize
	}
	if c.p.opt.AdminToken == "" {
		return nil, fmt.Errorf("wire: transfer into %s: client has no admin token: %w", queueName, queue.ErrNotPrivileged)
	}
	d, buf, err := c.do(OpTransfer, queueName, 0, func(e *enc) {
		e.str(c.p.opt.AdminToken)
		e.u64(uint64(len(items)))
		for _, it := range items {
			e.bytes(it.Body)
			e.i64(int64(it.Receives))
		}
	})
	if err != nil {
		if fb := c.fallback(err); fb != nil {
			if tr, ok := fb.(queue.Transferrer); ok {
				return tr.TransferInBatch(queueName, items)
			}
		}
		return nil, err
	}
	ids := d.strs()
	if err := c.finish(&d, buf); err != nil {
		return nil, err
	}
	return ids, nil
}
