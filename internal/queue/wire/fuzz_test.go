package wire

import (
	"testing"
)

// FuzzWireFrame drives the frame codec with arbitrary bytes: anything
// that decodes must re-encode and decode back to the same frame, and
// anything malformed — truncated, oversized, garbage — must error
// without panicking and without consuming more bytes than it was
// given (no over-read).
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(EncodeFrame(Frame{Op: OpCreateQueue, CorrID: 1, Queue: "tasks"}))
	f.Add(EncodeFrame(Frame{Op: OpSend, CorrID: 1 << 33, Queue: "job-1/tasks", Trace: "t-1", Payload: []byte("body")}))
	f.Add(EncodeFrame(Frame{Op: OpTransfer, CorrID: 9, Queue: "q", Payload: []byte{0x02, 0x01, 'x', 0x00}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return // malformed input must only error, which it did
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d bytes of %d-byte input", n, len(data))
		}
		re := EncodeFrame(fr)
		fr2, n2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		if !framesEqual(fr, fr2) {
			t.Fatalf("decode(encode(f)) != f: %+v vs %+v", fr, fr2)
		}
	})
}
