package queue

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestService(clock Clock) *Service {
	return NewService(Config{Clock: clock, Seed: 1})
}

func TestCreateSendReceiveDelete(t *testing.T) {
	s := newTestService(nil)
	if err := s.CreateQueue("tasks"); err != nil {
		t.Fatal(err)
	}
	id, err := s.SendMessage("tasks", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Error("empty message id")
	}
	m, ok, err := s.ReceiveMessage("tasks", time.Minute)
	if err != nil || !ok {
		t.Fatalf("receive: ok=%v err=%v", ok, err)
	}
	if string(m.Body) != "hello" {
		t.Errorf("body = %q", m.Body)
	}
	if m.Receives != 1 {
		t.Errorf("receives = %d, want 1", m.Receives)
	}
	if err := s.DeleteMessage("tasks", m.ReceiptHandle); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.ReceiveMessage("tasks", time.Minute); ok {
		t.Error("deleted message should not reappear")
	}
}

func TestQueueLifecycleErrors(t *testing.T) {
	s := newTestService(nil)
	if err := s.CreateQueue(""); err != ErrEmptyQueueName {
		t.Errorf("empty name: %v", err)
	}
	if err := s.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateQueue("q"); err != ErrQueueExists {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := s.SendMessage("missing", nil); err != ErrNoSuchQueue {
		t.Errorf("send to missing: %v", err)
	}
	if _, _, err := s.ReceiveMessage("missing", 0); err != ErrNoSuchQueue {
		t.Errorf("receive from missing: %v", err)
	}
	if err := s.DeleteQueue("missing"); err != ErrNoSuchQueue {
		t.Errorf("delete missing: %v", err)
	}
	if err := s.DeleteQueue("q"); err != nil {
		t.Fatal(err)
	}
}

func TestVisibilityTimeoutReappearance(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	s := newTestService(clock)
	if err := s.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SendMessage("q", []byte("task")); err != nil {
		t.Fatal(err)
	}
	m1, ok, _ := s.ReceiveMessage("q", 30*time.Second)
	if !ok {
		t.Fatal("first receive failed")
	}
	// Hidden while the timeout is pending.
	if _, ok, _ := s.ReceiveMessage("q", 30*time.Second); ok {
		t.Fatal("message should be invisible")
	}
	clock.Advance(31 * time.Second)
	m2, ok, _ := s.ReceiveMessage("q", 30*time.Second)
	if !ok {
		t.Fatal("message should reappear after visibility timeout")
	}
	if m2.ID != m1.ID {
		t.Errorf("different message reappeared: %s vs %s", m2.ID, m1.ID)
	}
	if m2.Receives != 2 {
		t.Errorf("receives = %d, want 2", m2.Receives)
	}
	// The first receipt handle is now stale.
	if err := s.DeleteMessage("q", m1.ReceiptHandle); err != ErrStaleReceipt {
		t.Errorf("stale receipt delete: %v, want ErrStaleReceipt", err)
	}
	// The fresh handle works.
	if err := s.DeleteMessage("q", m2.ReceiptHandle); err != nil {
		t.Errorf("fresh receipt delete: %v", err)
	}
}

func TestChangeVisibilityExtendsOwnership(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	s := newTestService(clock)
	s.CreateQueue("q")
	s.SendMessage("q", []byte("long task"))
	m, _, _ := s.ReceiveMessage("q", 10*time.Second)
	if err := s.ChangeVisibility("q", m.ReceiptHandle, time.Hour); err != nil {
		t.Fatal(err)
	}
	clock.Advance(30 * time.Minute)
	if _, ok, _ := s.ReceiveMessage("q", 0); ok {
		t.Error("extended message should stay invisible")
	}
	clock.Advance(31 * time.Minute)
	if _, ok, _ := s.ReceiveMessage("q", 0); !ok {
		t.Error("message should reappear after extension expires")
	}
	if err := s.ChangeVisibility("q", "bogus", time.Minute); err != ErrStaleReceipt {
		t.Errorf("bogus handle: %v", err)
	}
}

func TestApproximateCount(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	s := newTestService(clock)
	s.CreateQueue("q")
	for i := 0; i < 5; i++ {
		s.SendMessage("q", []byte{byte(i)})
	}
	v, f, err := s.ApproximateCount("q")
	if err != nil || v != 5 || f != 0 {
		t.Fatalf("counts = %d,%d err=%v; want 5,0", v, f, err)
	}
	s.ReceiveMessage("q", time.Minute)
	s.ReceiveMessage("q", time.Minute)
	v, f, _ = s.ApproximateCount("q")
	if v != 3 || f != 2 {
		t.Errorf("counts = %d,%d; want 3,2", v, f)
	}
	if _, _, err := s.ApproximateCount("nope"); err != ErrNoSuchQueue {
		t.Errorf("missing queue: %v", err)
	}
}

func TestPurge(t *testing.T) {
	s := newTestService(nil)
	s.CreateQueue("q")
	s.SendMessage("q", []byte("a"))
	s.SendMessage("q", []byte("b"))
	if err := s.Purge("q"); err != nil {
		t.Fatal(err)
	}
	if v, f, _ := s.ApproximateCount("q"); v+f != 0 {
		t.Errorf("queue not empty after purge: %d,%d", v, f)
	}
}

func TestUnorderedDelivery(t *testing.T) {
	s := NewService(Config{Seed: 42, ShuffleWindow: 8})
	s.CreateQueue("q")
	const n = 64
	for i := 0; i < n; i++ {
		s.SendMessage("q", []byte(fmt.Sprintf("%d", i)))
	}
	inOrder := true
	prev := -1
	for i := 0; i < n; i++ {
		m, ok, _ := s.ReceiveMessage("q", time.Hour)
		if !ok {
			t.Fatalf("receive %d failed", i)
		}
		var v int
		fmt.Sscanf(string(m.Body), "%d", &v)
		if v < prev {
			inOrder = false
		}
		prev = v
	}
	if inOrder {
		t.Error("delivery was perfectly FIFO; expected SQS-style weak ordering")
	}
}

func TestDuplicateDelivery(t *testing.T) {
	s := NewService(Config{Seed: 7, DuplicateProb: 1.0})
	s.CreateQueue("q")
	s.SendMessage("q", []byte("dup"))
	m1, ok1, _ := s.ReceiveMessage("q", time.Hour)
	m2, ok2, _ := s.ReceiveMessage("q", time.Hour)
	if !ok1 || !ok2 {
		t.Fatal("with DuplicateProb=1 both receives must deliver")
	}
	if m1.ID != m2.ID {
		t.Error("duplicates should be the same message")
	}
}

// Property: a message that is received but never deleted is always
// eventually redelivered; total successful deletes never exceed sends.
func TestQuickAtLeastOnce(t *testing.T) {
	f := func(nMsgs uint8, timeoutSecs uint8) bool {
		n := int(nMsgs)%20 + 1
		vis := time.Duration(int(timeoutSecs)%30+1) * time.Second
		clock := NewFakeClock(time.Unix(0, 0))
		s := NewService(Config{Clock: clock, Seed: int64(nMsgs)})
		s.CreateQueue("q")
		for i := 0; i < n; i++ {
			s.SendMessage("q", []byte{byte(i)})
		}
		// Receive everything without deleting.
		got := 0
		for {
			_, ok, _ := s.ReceiveMessage("q", vis)
			if !ok {
				break
			}
			got++
		}
		if got != n {
			return false
		}
		// After the timeout everything must be visible again.
		clock.Advance(vis + time.Second)
		v, _, _ := s.ApproximateCount("q")
		return v == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReceiversNoLostNoDoubleDelete(t *testing.T) {
	s := NewService(Config{Seed: 3, DefaultVisibility: time.Hour})
	s.CreateQueue("q")
	const n = 200
	for i := 0; i < n; i++ {
		s.SendMessage("q", []byte(fmt.Sprintf("m%d", i)))
	}
	var mu sync.Mutex
	seen := map[string]int{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok, err := s.ReceiveMessage("q", time.Hour)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
				if err := s.DeleteMessage("q", m.ReceiptHandle); err != nil {
					t.Errorf("delete: %v", err)
				}
				mu.Lock()
				seen[m.ID]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Errorf("saw %d distinct messages, want %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("message %s delivered %d times with hour-long visibility", id, c)
		}
	}
}

func TestAPIRequestAccounting(t *testing.T) {
	s := newTestService(nil)
	base := s.APIRequests()
	s.CreateQueue("q")
	s.SendMessage("q", []byte("x"))
	s.ReceiveMessage("q", time.Minute)
	s.ApproximateCount("q")
	if got := s.APIRequests() - base; got != 4 {
		t.Errorf("API requests = %d, want 4", got)
	}
}

func TestListQueuesSorted(t *testing.T) {
	s := newTestService(nil)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		s.CreateQueue(n)
	}
	got := s.ListQueues()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ListQueues = %v, want %v", got, want)
		}
	}
}

func TestRealClockAdvances(t *testing.T) {
	c := RealClock{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Error("real clock went backwards")
	}
}

func TestPurgeAndDeleteMissingQueue(t *testing.T) {
	s := newTestService(nil)
	if err := s.Purge("ghost"); err != ErrNoSuchQueue {
		t.Errorf("purge ghost: %v", err)
	}
	if err := s.DeleteMessage("ghost", "r"); err != ErrNoSuchQueue {
		t.Errorf("delete in ghost: %v", err)
	}
	if err := s.ChangeVisibility("ghost", "r", time.Minute); err != ErrNoSuchQueue {
		t.Errorf("change visibility in ghost: %v", err)
	}
}

func TestDeleteMessageTwice(t *testing.T) {
	s := newTestService(nil)
	s.CreateQueue("q")
	s.SendMessage("q", []byte("x"))
	m, _, _ := s.ReceiveMessage("q", time.Minute)
	if err := s.DeleteMessage("q", m.ReceiptHandle); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteMessage("q", m.ReceiptHandle); err != ErrStaleReceipt {
		t.Errorf("second delete: %v", err)
	}
}

func TestAPIRequestsAttributedPerQueue(t *testing.T) {
	s := NewService(Config{})
	if err := s.CreateQueue("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateQueue("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SendMessage("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReceiveMessage("a", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ApproximateCount("b"); err != nil {
		t.Fatal(err)
	}
	// a: create + send + receive; b: create + count.
	if got := s.APIRequestsFor("a"); got != 3 {
		t.Errorf("APIRequestsFor(a) = %d, want 3", got)
	}
	if got := s.APIRequestsFor("b"); got != 2 {
		t.Errorf("APIRequestsFor(b) = %d, want 2", got)
	}
	if got := s.APIRequests(); got != 5 {
		t.Errorf("APIRequests = %d, want 5", got)
	}
}
