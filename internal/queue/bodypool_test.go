package queue

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestBodyBucketIndex(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 20, bodyBucketCount - 1}, {1<<20 + 1, -1}, {64 << 20, -1},
	}
	for _, c := range cases {
		if got := bodyBucketIndex(c.n); got != c.want {
			t.Errorf("bodyBucketIndex(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBodyGetPutClasses(t *testing.T) {
	b := bodyGet(100)
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("bodyGet(100): len=%d cap=%d, want 100/128", len(b), cap(b))
	}
	bodyPut(b) // exact class capacity: accepted
	big := bodyGet(2 << 20)
	if len(big) != 2<<20 {
		t.Fatalf("oversized bodyGet: len=%d", len(big))
	}
	bodyPut(big)                  // beyond the largest class: silently dropped
	bodyPut(make([]byte, 0, 100)) // odd capacity: silently dropped
}

// TestBodyPoolRecyclingPreservesContents churns one queue through
// many send/receive/delete cycles of varied sizes and verifies every
// delivered body matches what was sent — the guard against a recycled
// buffer leaking stale longer contents or being handed out while an
// earlier message still owns it.
func TestBodyPoolRecyclingPreservesContents(t *testing.T) {
	s := NewService(Config{})
	if err := s.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var inFlight []struct {
		want    []byte
		receipt string
	}
	for i := 0; i < 500; i++ {
		size := 1 << uint(rng.Intn(12)) // 1B .. 2KiB, crossing many classes
		body := bytes.Repeat([]byte{byte(i)}, size)
		body = append(body, []byte(fmt.Sprintf("|%d", i))...)
		if _, err := s.SendMessage("q", body); err != nil {
			t.Fatal(err)
		}
		m, ok, err := s.ReceiveMessage("q", time.Hour)
		if err != nil || !ok {
			t.Fatalf("receive %d: ok=%v err=%v", i, ok, err)
		}
		inFlight = append(inFlight, struct {
			want    []byte
			receipt string
		}{append([]byte(nil), m.Body...), m.ReceiptHandle})
		// Ack a random earlier message so deletes interleave with live
		// receives and the pool keeps cycling buffers of other sizes.
		if len(inFlight) > 4 {
			j := rng.Intn(len(inFlight))
			if err := s.DeleteMessage("q", inFlight[j].receipt); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
			inFlight = append(inFlight[:j], inFlight[j+1:]...)
		}
		// The bodies of still-live messages must be untouched by any
		// recycling the deletes above triggered.
		visible, _, err := s.ApproximateCount("q")
		if err != nil || visible != 0 {
			t.Fatalf("cycle %d: %d visible, err=%v", i, visible, err)
		}
	}
	for _, f := range inFlight {
		if err := s.DeleteMessage("q", f.receipt); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBodyPoolDisabledWithDuplicates: with duplicate injection on, a
// delivery can hand the same stored buffer to two receivers without
// hiding the message, so delete must NOT recycle — the other receiver
// still legitimately reads it.
func TestBodyPoolDisabledWithDuplicates(t *testing.T) {
	s := NewService(Config{DuplicateProb: 1.0})
	if err := s.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	want := []byte("survives the other copy's delete")
	if _, err := s.SendMessage("q", want); err != nil {
		t.Fatal(err)
	}
	// DuplicateProb 1 delivers without hiding: both receives see the
	// same message, each with its own (superseding) receipt.
	first, ok, err := s.ReceiveMessage("q", time.Hour)
	if err != nil || !ok {
		t.Fatal(err)
	}
	second, ok, err := s.ReceiveMessage("q", time.Hour)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if err := s.DeleteMessage("q", second.ReceiptHandle); err != nil {
		t.Fatal(err)
	}
	// Force pool churn that would reuse a recycled buffer if one had
	// been freed.
	if err := s.CreateQueue("churn"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := s.SendMessage("churn", bytes.Repeat([]byte{0xee}, len(want))); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(first.Body, want) {
		t.Fatalf("duplicate holder's body corrupted after the other copy was deleted: %q", first.Body)
	}
}
