package queue

import (
	"errors"
	"testing"
	"time"
)

// TestHTTPClientSentinels verifies the sentinel errors survive the HTTP
// round trip: consumers (and the shard router) must be able to use
// errors.Is instead of matching status text.
func TestHTTPClientSentinels(t *testing.T) {
	c, _ := newHTTPQueue(t, nil)
	if _, err := c.SendMessage("missing", []byte("x")); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("send to missing queue: %v", err)
	}
	if _, _, err := c.ReceiveMessage("missing", 0); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("receive from missing queue: %v", err)
	}
	if err := c.DeleteQueue("missing"); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("delete missing queue: %v", err)
	}
	if _, _, err := c.ApproximateCount("missing"); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("count missing queue: %v", err)
	}
	if err := c.Purge("missing"); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("purge missing queue: %v", err)
	}
	if err := c.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteMessage("q", "bogus#r1"); !errors.Is(err, ErrStaleReceipt) {
		t.Errorf("delete with bogus receipt: %v", err)
	}
	if err := c.ChangeVisibility("q", "bogus#r1", time.Minute); !errors.Is(err, ErrStaleReceipt) {
		t.Errorf("change visibility with bogus receipt: %v", err)
	}
	results, err := c.DeleteMessageBatch("q", []string{"bogus#r1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !errors.Is(results[0], ErrStaleReceipt) {
		t.Errorf("batch delete stale entry: %v", results)
	}
}

// TestHTTPClientFullAPI drives the client methods added for queue.API
// parity — queue management, counters, and billing — over a live
// handler.
func TestHTTPClientFullAPI(t *testing.T) {
	c, svc := newHTTPQueue(t, nil)
	var api API = c // compile-time and runtime: client is a full queue.API
	if err := api.CreateQueue("a"); err != nil {
		t.Fatal(err)
	}
	if err := api.CreateQueue("b"); err != nil {
		t.Fatal(err)
	}
	names := api.ListQueues()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("ListQueues = %v", names)
	}
	if _, err := api.SendMessage("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	v, inflight, err := api.ApproximateCount("a")
	if err != nil || v != 1 || inflight != 0 {
		t.Errorf("count = %d,%d (%v)", v, inflight, err)
	}
	m, ok, err := api.ReceiveMessage("a", time.Minute)
	if err != nil || !ok {
		t.Fatalf("receive: ok=%v err=%v", ok, err)
	}
	if err := api.ChangeVisibility("a", m.ReceiptHandle, 0); err != nil {
		t.Errorf("release lease: %v", err)
	}
	if err := api.Purge("a"); err != nil {
		t.Errorf("purge: %v", err)
	}
	if v, inflight, _ := api.ApproximateCount("a"); v != 0 || inflight != 0 {
		t.Errorf("count after purge = %d,%d", v, inflight)
	}
	if got, want := api.APIRequestsFor("a"), svc.APIRequestsFor("a"); got != want {
		t.Errorf("APIRequestsFor over HTTP = %d, service says %d", got, want)
	}
	if got, want := api.APIRequests(), svc.APIRequests(); got != want {
		t.Errorf("APIRequests over HTTP = %d, service says %d", got, want)
	}
	if err := api.DeleteQueue("b"); err != nil {
		t.Errorf("delete queue: %v", err)
	}
	if names := api.ListQueues(); len(names) != 1 || names[0] != "a" {
		t.Errorf("ListQueues after delete = %v", names)
	}
}
