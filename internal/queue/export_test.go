package queue

// storeSizes exposes the per-queue index sizes so tests can assert that
// deleted messages are compacted out of every structure.
func (s *Service) storeSizes(name string) (visible, inflight, receipts int, err error) {
	q, err := s.getQueue(name)
	if err != nil {
		return 0, 0, 0, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.visible.Len(), q.inflight.Len(), len(q.byReceipt), nil
}
