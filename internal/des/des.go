// Package des is a small deterministic discrete-event simulator used by
// the performance model to replay the paper's experiments at full scale
// (hundreds of cores, thousands of files) in milliseconds of real time.
// Events execute in (time, sequence) order, so runs are reproducible.
package des

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback.
type event struct {
	at  float64 // simulation seconds
	seq int64   // tie-break for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Simulation is one simulated timeline.
type Simulation struct {
	now    float64
	seq    int64
	events eventHeap
}

// New creates an empty simulation at time 0.
func New() *Simulation { return &Simulation{} }

// Now returns the current simulation time in seconds.
func (s *Simulation) Now() float64 { return s.now }

// Schedule runs fn after delay seconds of simulated time. Negative
// delays panic: they would reorder the past.
func (s *Simulation) Schedule(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %g", delay))
	}
	s.seq++
	heap.Push(&s.events, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run executes events until none remain, returning the final time.
func (s *Simulation) Run() float64 {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// Resource is a capacity-limited server: Acquire queues work (FIFO) and
// starts it when a slot frees; the work calls release() when done.
type Resource struct {
	sim      *Simulation
	capacity int
	busy     int
	waiting  []func(release func())
}

// NewResource creates a resource with the given number of slots.
func NewResource(sim *Simulation, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("des: resource capacity %d", capacity))
	}
	return &Resource{sim: sim, capacity: capacity}
}

// Acquire schedules fn to run when a slot is available. fn receives a
// release function that it must call exactly once when finished (usually
// from a later scheduled event).
func (r *Resource) Acquire(fn func(release func())) {
	if r.busy < r.capacity {
		r.busy++
		r.start(fn)
		return
	}
	r.waiting = append(r.waiting, fn)
}

func (r *Resource) start(fn func(release func())) {
	released := false
	release := func() {
		if released {
			panic("des: double release")
		}
		released = true
		if len(r.waiting) > 0 {
			next := r.waiting[0]
			r.waiting = r.waiting[1:]
			r.start(next)
			return
		}
		r.busy--
	}
	// Start the work as its own event so Acquire never runs user code
	// synchronously (keeps ordering deterministic).
	r.sim.Schedule(0, func() { fn(release) })
}

// Busy returns the number of occupied slots.
func (r *Resource) Busy() int { return r.busy }

// QueueLen returns the number of waiting acquisitions.
func (r *Resource) QueueLen() int { return len(r.waiting) }
