package des

import (
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	end := s.Run()
	if end != 3 {
		t.Errorf("end time = %v", end)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSameTimeEventsFIFOBySchedule(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() {
			times = append(times, s.Now())
		})
	})
	end := s.Run()
	if end != 3 || len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v end = %v", times, end)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestResourceLimitsConcurrency(t *testing.T) {
	s := New()
	r := NewResource(s, 2)
	var concurrent, peak int
	task := func(dur float64) {
		r.Acquire(func(release func()) {
			concurrent++
			if concurrent > peak {
				peak = concurrent
			}
			s.Schedule(dur, func() {
				concurrent--
				release()
			})
		})
	}
	for i := 0; i < 10; i++ {
		task(1)
	}
	end := s.Run()
	if peak != 2 {
		t.Errorf("peak concurrency = %d, want 2", peak)
	}
	// 10 unit tasks on 2 slots = 5 time units.
	if end != 5 {
		t.Errorf("end = %v, want 5", end)
	}
}

func TestResourceFIFO(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Acquire(func(release func()) {
			order = append(order, i)
			s.Schedule(1, release)
		})
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	r.Acquire(func(release func()) {
		release()
		release()
	})
	s.Run()
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewResource(New(), 0)
}

// Property: makespan of n unit tasks on c slots is ceil(n/c).
func TestQuickMakespan(t *testing.T) {
	f := func(nTasks, caps uint8) bool {
		n := int(nTasks)%50 + 1
		c := int(caps)%8 + 1
		s := New()
		r := NewResource(s, c)
		for i := 0; i < n; i++ {
			r.Acquire(func(release func()) {
				s.Schedule(1, release)
			})
		}
		end := s.Run()
		want := float64((n + c - 1) / c)
		return end == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBusyAndQueueLen(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	r.Acquire(func(release func()) { s.Schedule(10, release) })
	r.Acquire(func(release func()) { s.Schedule(1, release) })
	s.Schedule(5, func() {
		if r.Busy() != 1 {
			t.Errorf("Busy = %d", r.Busy())
		}
		if r.QueueLen() != 1 {
			t.Errorf("QueueLen = %d", r.QueueLen())
		}
	})
	s.Run()
}
