// Package classiccloud implements the paper's Classic Cloud processing
// model (Figure 1): a client uploads input files to cloud storage and
// populates a scheduling queue with one task message per file;
// independent workers running on cloud instances pull tasks from the
// queue, download the input, run the configured executable, upload the
// result, and only then delete the task message. The queue's visibility
// timeout provides fault tolerance — a task whose worker dies reappears
// and is re-executed — and task idempotency makes duplicate execution
// harmless. A monitoring queue reports completions back to the client.
package classiccloud

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blob"
	"repro/internal/queue"
)

// Env bundles the cloud infrastructure services a deployment uses —
// the (S3/Azure Blob, SQS/Azure Queue) pair. Queue is any queue.API:
// a single in-process service, a remote service over HTTP, or a
// shard.Router fanning the namespace across many services.
type Env struct {
	Blob  *blob.Store
	Queue queue.API
}

// Task describes one unit of work: a single input file producing a
// single output file, as in the paper's applications.
type Task struct {
	ID           string `json:"id"`
	InputBucket  string `json:"input_bucket"`
	InputKey     string `json:"input_key"`
	OutputBucket string `json:"output_bucket"`
	OutputKey    string `json:"output_key"`
}

// Executor is the "configured executable program" a worker runs on each
// downloaded input file.
type Executor interface {
	// Name identifies the application (for queue/bucket naming).
	Name() string
	// Execute transforms one input file into one output file. It must be
	// deterministic or at least idempotent: the Classic Cloud model may
	// run a task more than once.
	Execute(task Task, input []byte) ([]byte, error)
}

// Preloader is implemented by executors that must stage shared data on
// each instance before processing tasks — the paper's BLAST database
// download-and-extract step.
type Preloader interface {
	Preload(env Env) error
}

// Config tunes a deployment.
type Config struct {
	JobName           string        // names queues and buckets
	VisibilityTimeout time.Duration // task lease length (default 1m)
	PollInterval      time.Duration // error-backoff spacing (default 2ms)
	DownloadRetries   int           // GET retries for eventual consistency (default 8)
	RetryBackoff      time.Duration // spacing between download retries (default 2ms)
	// LongPollWait is how long an idle worker blocks inside the queue's
	// long-poll receive before re-checking its stop signal. It replaces
	// the old PollInterval sleep loop: idle workers park on the queue's
	// wait list and wake the moment a task arrives. Default 50ms;
	// negative forces non-blocking receives.
	LongPollWait time.Duration
	// ReceiveBatch is how many tasks a worker pulls per receive call
	// (1..queue.MaxBatch, default 4). Task acknowledgements and monitor
	// reports are batched the same way, so the queue bill amortizes to
	// roughly 3 requests per ReceiveBatch tasks instead of 3 per task.
	ReceiveBatch int
	// CrashBeforeDelete is a fault-injection hook: when it returns true
	// the worker "dies" after executing but before deleting the task, so
	// the visibility timeout must recover the work.
	CrashBeforeDelete func(workerID int, task Task) bool
	// HeartbeatInterval is how often a worker renews its task lease
	// (ChangeVisibility) while processing, so tasks slower than the
	// visibility timeout are not spuriously redelivered — the
	// long-running-worker pattern the queue API exists to support.
	// Defaults to VisibilityTimeout/3; negative disables renewal.
	HeartbeatInterval time.Duration
	// MaxReceives caps deliveries per task message. A message received
	// more than MaxReceives times is treated as poison: it is removed
	// from the task queue and, when DeadLetterQueue is set, parked there
	// for offline inspection (the SQS redrive-policy pattern). 0 disables
	// the cap, preserving the seed's retry-forever behaviour.
	MaxReceives int
	// DeadLetterQueue receives poison task messages (over the receive
	// cap, or undecodable). Empty means poison messages are dropped.
	DeadLetterQueue string
	// InstanceType labels this deployment's monitor reports with the
	// instance type running the workers (cloud.InstanceType.Key() form,
	// "provider/name"), so per-type service-time calibration can keep a
	// mixed fleet's samples apart. Empty omits the label (reports from
	// before the field existed parse the same way).
	InstanceType string
}

func (c Config) withDefaults() Config {
	if c.JobName == "" {
		c.JobName = "job"
	}
	if c.VisibilityTimeout == 0 {
		c.VisibilityTimeout = time.Minute
	}
	if c.PollInterval == 0 {
		c.PollInterval = 2 * time.Millisecond
	}
	if c.DownloadRetries == 0 {
		c.DownloadRetries = 8
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = c.VisibilityTimeout / 3
	}
	if c.LongPollWait == 0 {
		c.LongPollWait = 50 * time.Millisecond
	}
	if c.ReceiveBatch <= 0 {
		c.ReceiveBatch = 4
	}
	if c.ReceiveBatch > queue.MaxBatch {
		c.ReceiveBatch = queue.MaxBatch
	}
	return c
}

// Queue and bucket names derived from the job name. Queue names use
// the job name as a placement-group prefix ("job/tasks"), so a sharded
// queue deployment (internal/queue/shard) co-locates one job's task,
// monitor, and dead-letter queues on a single shard and its queue
// traffic never crosses shards.
func (c Config) taskQueue() string    { return c.JobName + "/tasks" }
func (c Config) monitorQueue() string { return c.JobName + "/monitor" }

// TaskQueue returns the job's scheduling queue name (for layers, like
// the elastic broker, that observe queue depth directly).
func (c Config) TaskQueue() string { return c.taskQueue() }

// MonitorQueue returns the job's monitoring queue name.
func (c Config) MonitorQueue() string { return c.monitorQueue() }

// MonitorReport is one decoded monitoring-queue report.
type MonitorReport struct {
	TaskID   string
	WorkerID int
	Status   string // StatusDone or StatusDead
	// ServiceTime is the worker-measured duration of the task pipeline
	// (download → execute → upload), the per-task service time the
	// paper's variability analysis distributes. Zero for dead-letter
	// reports and for reports written before the field existed.
	ServiceTime time.Duration
	// InstanceType is the reporting instance's type key
	// ("provider/name"); empty for reports from deployments that did
	// not set Config.InstanceType.
	InstanceType string
}

// ParseMonitorReport decodes one monitoring-queue report.
func ParseMonitorReport(body []byte) (MonitorReport, error) {
	var mm monitorMsg
	if err := json.Unmarshal(body, &mm); err != nil {
		return MonitorReport{}, fmt.Errorf("classiccloud: bad monitor message: %w", err)
	}
	return MonitorReport{
		TaskID:       mm.TaskID,
		WorkerID:     mm.WorkerID,
		Status:       mm.Status,
		ServiceTime:  time.Duration(mm.ServiceNS),
		InstanceType: mm.InstanceType,
	}, nil
}

// ParseMonitorMessage decodes one monitoring-queue report into its
// terminal status (StatusDone or StatusDead) and task ID.
func ParseMonitorMessage(body []byte) (status, taskID string, err error) {
	r, err := ParseMonitorReport(body)
	if err != nil {
		return "", "", err
	}
	return r.Status, r.TaskID, nil
}

// InputBucket returns the job's input bucket name.
func (c Config) InputBucket() string { return c.JobName + "-input" }

// OutputBucket returns the job's output bucket name.
func (c Config) OutputBucket() string { return c.JobName + "-output" }

// Task terminal statuses reported on the monitor queue.
const (
	StatusDone = "done"
	// StatusDead marks a task that exhausted its receive cap and was
	// parked on the dead-letter queue instead of completing.
	StatusDead = "dead"
)

// monitorMsg is the completion report workers push to the monitor queue.
type monitorMsg struct {
	TaskID   string `json:"task_id"`
	WorkerID int    `json:"worker_id"`
	Status   string `json:"status"` // StatusDone or StatusDead
	// ServiceNS is the task's measured pipeline duration in nanoseconds
	// (done reports only).
	ServiceNS int64 `json:"service_ns,omitempty"`
	// InstanceType is the reporting instance's type key (omitted when
	// the deployment does not label itself; old reports parse the same).
	InstanceType string `json:"instance_type,omitempty"`
}

// Client drives a Classic Cloud job: setup, submission, and completion
// tracking.
type Client struct {
	env Env
	cfg Config
}

// NewClient returns a client for the given environment.
func NewClient(env Env, cfg Config) *Client {
	return &Client{env: env, cfg: cfg.withDefaults()}
}

// Setup creates the job's queues and buckets. It is idempotent.
func (c *Client) Setup() error {
	queues := []string{c.cfg.taskQueue(), c.cfg.monitorQueue()}
	if c.cfg.DeadLetterQueue != "" {
		queues = append(queues, c.cfg.DeadLetterQueue)
	}
	for _, q := range queues {
		if err := c.env.Queue.CreateQueue(q); err != nil && !errors.Is(err, queue.ErrQueueExists) {
			return fmt.Errorf("classiccloud: creating queue %s: %w", q, err)
		}
	}
	for _, b := range []string{c.cfg.InputBucket(), c.cfg.OutputBucket()} {
		if err := c.env.Blob.CreateBucket(b); err != nil && !errors.Is(err, blob.ErrBucketExists) {
			return fmt.Errorf("classiccloud: creating bucket %s: %w", b, err)
		}
	}
	return nil
}

// SubmitFiles uploads each named input file to the input bucket and
// enqueues one task per file. Output keys get an ".out" suffix.
func (c *Client) SubmitFiles(files map[string][]byte) ([]Task, error) {
	tasks := make([]Task, 0, len(files))
	// Deterministic submission order simplifies reproducibility.
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		if err := c.env.Blob.Put(c.cfg.InputBucket(), name, files[name]); err != nil {
			return nil, fmt.Errorf("classiccloud: uploading %s: %w", name, err)
		}
		task := c.cfg.TasksFromIDs([]string{name})[0]
		body, err := json.Marshal(task)
		if err != nil {
			return nil, fmt.Errorf("classiccloud: encoding task: %w", err)
		}
		if _, err := c.env.Queue.SendMessage(c.cfg.taskQueue(), body); err != nil {
			return nil, fmt.Errorf("classiccloud: enqueueing %s: %w", name, err)
		}
		tasks = append(tasks, task)
	}
	return tasks, nil
}

// Reattach re-adopts a previously submitted job from its task IDs: it
// recreates any missing queues and buckets (Setup is idempotent) and
// reconstructs the task set from the deterministic naming convention
// SubmitFiles uses — WITHOUT re-uploading inputs or re-enqueueing task
// messages. Messages already in the task queue keep their receive
// counts and leases, and completion reports waiting in the monitor
// queue are preserved, so a recovering controller (the journaled
// broker) resumes monitoring exactly where the dead one stopped.
func (c *Client) Reattach(taskIDs []string) ([]Task, error) {
	if err := c.Setup(); err != nil {
		return nil, err
	}
	return c.cfg.TasksFromIDs(taskIDs), nil
}

// TasksFromIDs reconstructs the task set SubmitFiles created for these
// IDs from the deterministic naming convention (input key = ID, output
// key = ID + ".out"). It is the single definition of that convention:
// SubmitFiles, Reattach, and recovering controllers all agree through
// it.
func (c Config) TasksFromIDs(taskIDs []string) []Task {
	tasks := make([]Task, len(taskIDs))
	for i, id := range taskIDs {
		tasks[i] = Task{
			ID:           id,
			InputBucket:  c.InputBucket(),
			InputKey:     id,
			OutputBucket: c.OutputBucket(),
			OutputKey:    id + ".out",
		}
	}
	return tasks
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Report summarizes a completed job.
type Report struct {
	Completed     int
	DeadLettered  int // tasks parked on the dead-letter queue
	Duplicates    int // tasks reported done more than once (re-execution)
	Elapsed       time.Duration
	QueueRequests int64
}

// WaitForCompletion drains the monitoring queue until every task has
// reported a terminal status — done (verifying outputs exist) or dead
// (parked on the dead-letter queue) — or the timeout expires.
func (c *Client) WaitForCompletion(tasks []Task, timeout time.Duration) (Report, error) {
	start := time.Now()
	deadline := start.Add(timeout)
	done := make(map[string]bool, len(tasks))
	dead := make(map[string]bool)
	dups := 0
	// deadOnly excludes tasks that were both dead-lettered and completed
	// (one delivery burned the receive cap while a slow worker finished
	// anyway); completion wins so counts sum to the task total.
	deadOnly := func() int {
		n := 0
		for id := range dead {
			if !done[id] {
				n++
			}
		}
		return n
	}
	settled := func() int { return len(done) + deadOnly() }
	for settled() < len(tasks) {
		if time.Now().After(deadline) {
			return Report{Completed: len(done), DeadLettered: deadOnly(), Duplicates: dups, Elapsed: time.Since(start)},
				fmt.Errorf("classiccloud: timeout after %v with %d/%d tasks complete",
					timeout, settled(), len(tasks))
		}
		// Long-poll a batch of completion reports and acknowledge them
		// with one delete call, instead of one receive + one delete per
		// report plus an idle sleep loop.
		msgs, err := c.env.Queue.ReceiveMessageBatch(
			c.cfg.monitorQueue(), time.Minute, queue.MaxBatch, c.cfg.LongPollWait)
		if err != nil {
			return Report{}, err
		}
		if len(msgs) == 0 {
			continue // the long poll already waited
		}
		receipts := make([]string, len(msgs))
		for i, m := range msgs {
			receipts[i] = m.ReceiptHandle
		}
		results, err := c.env.Queue.DeleteMessageBatch(c.cfg.monitorQueue(), receipts)
		if err != nil {
			return Report{}, err
		}
		for i, m := range msgs {
			if results[i] != nil {
				continue // redelivered monitor message; count once via the map
			}
			var mm monitorMsg
			if err := json.Unmarshal(m.Body, &mm); err != nil {
				// Corrupt report: skip it rather than abort — the batch is
				// already deleted, and aborting here would discard the
				// valid completions travelling alongside it.
				continue
			}
			if mm.Status == StatusDead {
				dead[mm.TaskID] = true
				continue
			}
			if done[mm.TaskID] {
				dups++
			}
			done[mm.TaskID] = true
		}
	}
	// Verify all completed outputs are present (consistent read: the
	// client retries until visible in a real deployment). Dead-lettered
	// tasks produced no output by definition.
	for _, t := range tasks {
		if dead[t.ID] && !done[t.ID] {
			continue
		}
		if ok, err := c.env.Blob.Exists(t.OutputBucket, t.OutputKey); err != nil || !ok {
			return Report{}, fmt.Errorf("classiccloud: output %s missing after completion", t.OutputKey)
		}
	}
	return Report{
		Completed:     len(done),
		DeadLettered:  deadOnly(),
		Duplicates:    dups,
		Elapsed:       time.Since(start),
		QueueRequests: c.env.Queue.APIRequests(),
	}, nil
}

// Progress is a point-in-time view of a running job, assembled from the
// monitoring queue's approximate counts — the paper's "monitoring
// message queue to monitor the progress of the computation".
type Progress struct {
	TasksQueued   int // visible task messages (not yet picked up)
	TasksInFlight int // leased to a worker, not yet acknowledged
	Reported      int // completion reports waiting in the monitor queue
}

// Progress samples the job's queues. Counts are approximate in exactly
// the way the underlying queue service's counts are.
func (c *Client) Progress() (Progress, error) {
	var p Progress
	v, f, err := c.env.Queue.ApproximateCount(c.cfg.taskQueue())
	if err != nil {
		return p, err
	}
	p.TasksQueued, p.TasksInFlight = v, f
	v, f, err = c.env.Queue.ApproximateCount(c.cfg.monitorQueue())
	if err != nil {
		return p, err
	}
	p.Reported = v + f
	return p, nil
}

// CollectOutputs downloads every task output.
func (c *Client) CollectOutputs(tasks []Task) (map[string][]byte, error) {
	out := make(map[string][]byte, len(tasks))
	for _, t := range tasks {
		data, err := c.env.Blob.GetConsistent(t.OutputBucket, t.OutputKey)
		if err != nil {
			return nil, fmt.Errorf("classiccloud: collecting %s: %w", t.OutputKey, err)
		}
		out[t.ID] = data
	}
	return out, nil
}

// Instance models one cloud VM running a pool of worker processes, the
// paper's "number of workers per instance" knob.
type Instance struct {
	env     Env
	cfg     Config
	exec    Executor
	stop    chan struct{}
	wg      sync.WaitGroup
	stats   InstanceStats
	stopped atomic.Bool
	killed  atomic.Bool
}

// InstanceStats counts worker activity.
type InstanceStats struct {
	TasksExecuted  atomic.Int64
	TasksAbandoned atomic.Int64 // crash-injected abandonments
	DeadLettered   atomic.Int64 // poison tasks parked on the dead-letter queue
	ExecErrors     atomic.Int64
	StaleDeletes   atomic.Int64 // task finished by us but lease had expired
	DownloadRetrys atomic.Int64
	// BusyNanos accumulates wall time workers spent inside the task
	// pipeline (download → execute → upload), the numerator of fleet
	// utilization.
	BusyNanos atomic.Int64
}

// StartInstance launches workersPerInstance worker goroutines. The
// executor's Preload (if any) runs once before workers start, like the
// paper's database staging.
func StartInstance(env Env, cfg Config, exec Executor, workersPerInstance int) (*Instance, error) {
	cfg = cfg.withDefaults()
	inst := &Instance{env: env, cfg: cfg, exec: exec, stop: make(chan struct{})}
	if p, ok := exec.(Preloader); ok {
		if err := p.Preload(env); err != nil {
			return nil, fmt.Errorf("classiccloud: preload: %w", err)
		}
	}
	for w := 0; w < workersPerInstance; w++ {
		inst.wg.Add(1)
		go inst.workerLoop(w)
	}
	return inst, nil
}

// Stop shuts the instance down and waits for workers to exit. Workers
// finish (and acknowledge) their current task first — the graceful
// drain of a planned scale-down.
func (inst *Instance) Stop() {
	if inst.stopped.CompareAndSwap(false, true) {
		close(inst.stop)
	}
	inst.wg.Wait()
}

// Kill simulates a worker crash or spot-instance preemption: workers
// abandon whatever task they are processing without acknowledging or
// uploading it, so the queue's visibility timeout must recover the
// work on another instance — the paper's fault-tolerance story
// exercised for real.
func (inst *Instance) Kill() {
	inst.killed.Store(true)
	inst.Stop()
}

// Stats exposes the instance counters.
func (inst *Instance) Stats() *InstanceStats { return &inst.stats }

func (inst *Instance) workerLoop(workerID int) {
	defer inst.wg.Done()
	for {
		select {
		case <-inst.stop:
			return
		default:
		}
		// Long poll: an idle worker parks on the queue's wait list and
		// wakes when a task arrives or a lease expires, instead of
		// burning a receive request every PollInterval.
		msgs, err := inst.env.Queue.ReceiveMessageBatch(
			inst.cfg.taskQueue(), inst.cfg.VisibilityTimeout,
			inst.cfg.ReceiveBatch, inst.cfg.LongPollWait)
		if err != nil {
			select {
			case <-inst.stop:
				return
			case <-time.After(inst.cfg.PollInterval):
			}
			continue
		}
		if len(msgs) == 0 {
			continue // the long poll already waited; just re-check stop
		}
		inst.processBatch(workerID, msgs)
	}
}

// processBatch runs every task of one receive batch, then reports the
// completed ones with a single batch send and acknowledges them with a
// single batch delete — 3 queue requests per batch on the happy path.
func (inst *Instance) processBatch(workerID int, msgs []queue.Message) {
	// One lease renewer covers the whole batch: tasks queued behind a
	// slow one must keep their leases alive too.
	var renew *leaseRenewer
	if inst.cfg.HeartbeatInterval > 0 {
		receipts := make([]string, len(msgs))
		for i, m := range msgs {
			receipts[i] = m.ReceiptHandle
		}
		renew = inst.startLeaseRenewer(receipts)
		defer renew.stop()
	}
	var ackReceipts []string
	var reports [][]byte
	for _, m := range msgs {
		var task Task
		if err := json.Unmarshal(m.Body, &task); err != nil {
			// Undecodable message: park it so it cannot wedge the queue.
			inst.deadLetter(workerID, "", m)
			renew.remove(m.ReceiptHandle)
			continue
		}
		if inst.cfg.MaxReceives > 0 && m.Receives > inst.cfg.MaxReceives {
			// Poison task: it has burned through its retry budget
			// (executor failures, repeated crashes) — take it out of
			// rotation instead of retrying forever.
			inst.deadLetter(workerID, task.ID, m)
			renew.remove(m.ReceiptHandle)
			continue
		}
		taskStart := time.Now()
		if inst.processTask(workerID, task) {
			ackReceipts = append(ackReceipts, m.ReceiptHandle)
			mm, _ := json.Marshal(monitorMsg{
				TaskID: task.ID, WorkerID: workerID, Status: StatusDone,
				ServiceNS:    int64(time.Since(taskStart)),
				InstanceType: inst.cfg.InstanceType,
			})
			reports = append(reports, mm)
		} else {
			// The task was not acknowledged (failure, crash injection, or
			// preemption): stop renewing its lease so the visibility
			// timeout re-exposes it on schedule, not after the rest of
			// this batch finishes.
			renew.remove(m.ReceiptHandle)
		}
	}
	// Report BEFORE deleting: a crash between the two then redelivers
	// the task — re-executed (idempotent) and re-reported (the broker's
	// fold drops settled repeats) — instead of silently losing the
	// settlement of a deleted task, which no retry would ever repair.
	for start := 0; start < len(reports); start += queue.MaxBatch {
		end := min(start+queue.MaxBatch, len(reports))
		_, _ = inst.env.Queue.SendMessageBatch(inst.cfg.monitorQueue(), reports[start:end])
	}
	for start := 0; start < len(ackReceipts); start += queue.MaxBatch {
		end := min(start+queue.MaxBatch, len(ackReceipts))
		results, err := inst.env.Queue.DeleteMessageBatch(inst.cfg.taskQueue(), ackReceipts[start:end])
		if err != nil {
			continue
		}
		for _, r := range results {
			if r != nil {
				// Our lease expired and the task was re-issued; the result
				// is already uploaded and tasks are idempotent, so this is
				// harmless.
				inst.stats.StaleDeletes.Add(1)
			}
		}
	}
}

// deadLetter removes a poison message from the task queue, parks its
// body on the dead-letter queue (when configured), and reports the task
// dead on the monitor queue so clients stop waiting for it.
func (inst *Instance) deadLetter(workerID int, taskID string, m queue.Message) {
	if inst.cfg.DeadLetterQueue != "" {
		if _, err := inst.env.Queue.SendMessage(inst.cfg.DeadLetterQueue, m.Body); err != nil {
			// Keep the message in the task queue rather than lose it:
			// it will be redelivered and dead-lettering retried.
			return
		}
	}
	if err := inst.env.Queue.DeleteMessage(inst.cfg.taskQueue(), m.ReceiptHandle); err != nil {
		inst.stats.StaleDeletes.Add(1)
		return
	}
	inst.stats.DeadLettered.Add(1)
	if taskID != "" {
		mm, _ := json.Marshal(monitorMsg{TaskID: taskID, WorkerID: workerID, Status: StatusDead})
		_, _ = inst.env.Queue.SendMessage(inst.cfg.monitorQueue(), mm)
	}
}

// processTask is the worker pipeline of Figure 1: download → execute →
// upload. It reports whether the task succeeded and should be
// acknowledged (batch-deleted) and reported done by the caller.
func (inst *Instance) processTask(workerID int, task Task) bool {
	start := time.Now()
	defer func() { inst.stats.BusyNanos.Add(int64(time.Since(start))) }()
	input, err := inst.downloadWithRetry(task.InputBucket, task.InputKey)
	if err != nil {
		// Leave the message undeleted; it will reappear and be retried.
		inst.stats.ExecErrors.Add(1)
		return false
	}
	output, err := inst.exec.Execute(task, input)
	if err != nil {
		inst.stats.ExecErrors.Add(1)
		return false // visibility timeout will re-expose the task
	}
	if inst.killed.Load() {
		// The instance was preempted mid-task: abandon without
		// acknowledging so the visibility timeout re-exposes the work.
		inst.stats.TasksAbandoned.Add(1)
		return false
	}
	if inst.cfg.CrashBeforeDelete != nil && inst.cfg.CrashBeforeDelete(workerID, task) {
		// Simulated worker death after doing the work but before the
		// acknowledgement: the canonical at-least-once failure.
		inst.stats.TasksAbandoned.Add(1)
		return false
	}
	if err := inst.env.Blob.Put(task.OutputBucket, task.OutputKey, output); err != nil {
		inst.stats.ExecErrors.Add(1)
		return false
	}
	inst.stats.TasksExecuted.Add(1)
	return true
}

// leaseRenewer extends the visibility timeout of a batch's receipts
// every heartbeat so long-running tasks — and tasks queued behind them
// in the same batch — keep their leases. A receipt drops out of renewal
// when it goes stale (deleted, or the lease was lost to another
// worker); renewal stops entirely when the batch finishes or the
// instance is killed (preempted work must reappear promptly).
type leaseRenewer struct {
	mu       sync.Mutex
	receipts map[string]bool
	done     chan struct{}
}

func (r *leaseRenewer) stop() { close(r.done) }

// remove drops one receipt from renewal — called when its task settles
// without an acknowledgement (failure, crash, preemption), so the lease
// expires on schedule and redelivery is not delayed by the rest of the
// batch still processing.
func (r *leaseRenewer) remove(receipt string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.receipts, receipt)
	r.mu.Unlock()
}

func (inst *Instance) startLeaseRenewer(receipts []string) *leaseRenewer {
	r := &leaseRenewer{receipts: make(map[string]bool, len(receipts)), done: make(chan struct{})}
	for _, receipt := range receipts {
		r.receipts[receipt] = true
	}
	go func() {
		ticker := time.NewTicker(inst.cfg.HeartbeatInterval)
		defer ticker.Stop()
		for {
			select {
			case <-r.done:
				return
			case <-ticker.C:
				if inst.killed.Load() {
					return
				}
				r.mu.Lock()
				live := make([]string, 0, len(r.receipts))
				for receipt := range r.receipts {
					live = append(live, receipt)
				}
				r.mu.Unlock()
				for _, receipt := range live {
					if err := inst.env.Queue.ChangeVisibility(
						inst.cfg.taskQueue(), receipt, inst.cfg.VisibilityTimeout); err != nil {
						r.mu.Lock()
						delete(r.receipts, receipt)
						r.mu.Unlock()
					}
				}
			}
		}
	}()
	return r
}

// downloadWithRetry tolerates eventual-consistency NotFound responses by
// retrying, the standard client pattern on S3-era storage.
func (inst *Instance) downloadWithRetry(bucket, key string) ([]byte, error) {
	var lastErr error
	for i := 0; i < inst.cfg.DownloadRetries; i++ {
		data, err := inst.env.Blob.Get(bucket, key)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !errors.Is(err, blob.ErrNoSuchKey) {
			return nil, err
		}
		inst.stats.DownloadRetrys.Add(1)
		time.Sleep(inst.cfg.RetryBackoff)
	}
	return nil, fmt.Errorf("classiccloud: download %s/%s: %w", bucket, key, lastErr)
}

// FuncExecutor adapts a function to the Executor interface.
type FuncExecutor struct {
	AppName string
	Fn      func(task Task, input []byte) ([]byte, error)
}

// Name implements Executor.
func (f FuncExecutor) Name() string { return f.AppName }

// Execute implements Executor.
func (f FuncExecutor) Execute(task Task, input []byte) ([]byte, error) { return f.Fn(task, input) }

// Validate sanity-checks a task.
func (t Task) Validate() error {
	if t.ID == "" || t.InputKey == "" || t.OutputKey == "" {
		return errors.New("classiccloud: incomplete task")
	}
	if strings.ContainsRune(t.ID, '\n') {
		return errors.New("classiccloud: task id contains newline")
	}
	return nil
}
