package classiccloud

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/queue"
)

func testEnv() Env {
	return Env{
		Blob:  blob.NewStore(blob.Config{}),
		Queue: queue.NewService(queue.Config{Seed: 1}),
	}
}

// upperExec is a trivial idempotent executable.
var upperExec = FuncExecutor{
	AppName: "upper",
	Fn: func(_ Task, input []byte) ([]byte, error) {
		return bytes.ToUpper(input), nil
	},
}

// slowUpperExec takes long enough per task that work interleaves across
// workers and instances.
var slowUpperExec = FuncExecutor{
	AppName: "slow-upper",
	Fn: func(_ Task, input []byte) ([]byte, error) {
		time.Sleep(3 * time.Millisecond)
		return bytes.ToUpper(input), nil
	},
}

func makeFiles(n int) map[string][]byte {
	files := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		files[fmt.Sprintf("file%03d.txt", i)] = []byte(fmt.Sprintf("content of file %d", i))
	}
	return files
}

func TestEndToEndSingleInstance(t *testing.T) {
	env := testEnv()
	cfg := Config{JobName: "e2e"}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	files := makeFiles(20)
	tasks, err := client.SubmitFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 20 {
		t.Fatalf("%d tasks", len(tasks))
	}
	inst, err := StartInstance(env, cfg, upperExec, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	rep, err := client.WaitForCompletion(tasks, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 20 {
		t.Errorf("completed = %d", rep.Completed)
	}
	outputs, err := client.CollectOutputs(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range files {
		if got := outputs[name]; !bytes.Equal(got, bytes.ToUpper(in)) {
			t.Errorf("%s: output %q", name, got)
		}
	}
}

func TestMultipleInstancesShareQueue(t *testing.T) {
	env := testEnv()
	cfg := Config{JobName: "multi"}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	tasks, err := client.SubmitFiles(makeFiles(40))
	if err != nil {
		t.Fatal(err)
	}
	var instances []*Instance
	for i := 0; i < 4; i++ {
		inst, err := StartInstance(env, cfg, slowUpperExec, 2)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, inst)
	}
	defer func() {
		for _, in := range instances {
			in.Stop()
		}
	}()
	if _, err := client.WaitForCompletion(tasks, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Dynamic scheduling through the global queue: with 4 identical
	// instances, no single instance should have done all the work.
	total := int64(0)
	busiest := int64(0)
	for _, in := range instances {
		n := in.Stats().TasksExecuted.Load()
		total += n
		if n > busiest {
			busiest = n
		}
	}
	if total < 40 {
		t.Errorf("total executed = %d, want ≥ 40", total)
	}
	if busiest == total {
		t.Error("one instance executed everything; queue sharing broken")
	}
}

func TestVisibilityTimeoutRecoversCrashedWorker(t *testing.T) {
	env := testEnv()
	var crashes atomic.Int64
	cfg := Config{
		JobName:           "crashy",
		VisibilityTimeout: 150 * time.Millisecond,
		// First three tasks observed by worker 0 are abandoned after
		// execution, before deletion.
		CrashBeforeDelete: func(workerID int, task Task) bool {
			return workerID == 0 && crashes.Add(1) <= 3
		},
	}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	tasks, err := client.SubmitFiles(makeFiles(12))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := StartInstance(env, cfg, slowUpperExec, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	rep, err := client.WaitForCompletion(tasks, 15*time.Second)
	if err != nil {
		t.Fatalf("job did not recover from crashes: %v", err)
	}
	if rep.Completed != 12 {
		t.Errorf("completed = %d", rep.Completed)
	}
	if inst.Stats().TasksAbandoned.Load() == 0 {
		t.Error("crash injection never fired")
	}
}

func TestEventualConsistencyRetries(t *testing.T) {
	// A consistency window shorter than the retry budget: downloads
	// must succeed via retry.
	env := Env{
		Blob:  blob.NewStore(blob.Config{ConsistencyWindow: 20 * time.Millisecond}),
		Queue: queue.NewService(queue.Config{Seed: 2}),
	}
	cfg := Config{JobName: "ec", DownloadRetries: 30, RetryBackoff: 5 * time.Millisecond}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	tasks, err := client.SubmitFiles(makeFiles(6))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := StartInstance(env, cfg, upperExec, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	if _, err := client.WaitForCompletion(tasks, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	if inst.Stats().DownloadRetrys.Load() == 0 {
		t.Log("note: no retries observed (tasks started after the window); acceptable")
	}
}

func TestFailingExecutorRetriesViaTimeout(t *testing.T) {
	env := testEnv()
	var failures atomic.Int64
	flaky := FuncExecutor{
		AppName: "flaky",
		Fn: func(task Task, input []byte) ([]byte, error) {
			// Fail the first two attempts overall.
			if failures.Add(1) <= 2 {
				return nil, errors.New("transient failure")
			}
			return bytes.ToUpper(input), nil
		},
	}
	cfg := Config{JobName: "flaky", VisibilityTimeout: 100 * time.Millisecond}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	tasks, err := client.SubmitFiles(makeFiles(4))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := StartInstance(env, cfg, flaky, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	if _, err := client.WaitForCompletion(tasks, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	if inst.Stats().ExecErrors.Load() < 2 {
		t.Errorf("ExecErrors = %d, want ≥ 2", inst.Stats().ExecErrors.Load())
	}
}

type preloadExec struct {
	FuncExecutor
	preloaded atomic.Bool
}

func (p *preloadExec) Preload(env Env) error {
	// Fetch the shared reference data, like the BLAST DB download.
	if _, err := env.Blob.GetConsistent("shared", "refdata"); err != nil {
		return err
	}
	p.preloaded.Store(true)
	return nil
}

func TestPreloadRunsBeforeWorkers(t *testing.T) {
	env := testEnv()
	env.Blob.CreateBucket("shared")
	env.Blob.Put("shared", "refdata", []byte("reference"))
	pe := &preloadExec{FuncExecutor: upperExec}
	cfg := Config{JobName: "preload"}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	inst, err := StartInstance(env, cfg, pe, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	if !pe.preloaded.Load() {
		t.Error("preload did not run")
	}
}

func TestPreloadFailureAbortsInstance(t *testing.T) {
	env := testEnv()
	pe := &preloadExec{FuncExecutor: upperExec} // bucket "shared" missing
	cfg := Config{JobName: "preloadfail"}
	if _, err := StartInstance(env, cfg, pe, 1); err == nil {
		t.Fatal("missing preload data should abort instance start")
	}
}

func TestSetupIsIdempotent(t *testing.T) {
	env := testEnv()
	client := NewClient(env, Config{JobName: "idem"})
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := client.Setup(); err != nil {
		t.Errorf("second Setup: %v", err)
	}
}

func TestWaitTimesOutWithoutWorkers(t *testing.T) {
	env := testEnv()
	client := NewClient(env, Config{JobName: "nobody"})
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	tasks, _ := client.SubmitFiles(makeFiles(2))
	_, err := client.WaitForCompletion(tasks, 100*time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Errorf("err = %v", err)
	}
}

func TestPoisonMessageDoesNotWedgeWorkers(t *testing.T) {
	env := testEnv()
	cfg := Config{JobName: "poison"}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	// Inject garbage directly into the task queue.
	env.Queue.SendMessage("poison/tasks", []byte("{{{not json"))
	tasks, err := client.SubmitFiles(makeFiles(5))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := StartInstance(env, cfg, upperExec, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	if _, err := client.WaitForCompletion(tasks, 10*time.Second); err != nil {
		t.Fatalf("poison message wedged the job: %v", err)
	}
}

func TestDuplicateDeliveryIsIdempotent(t *testing.T) {
	// Force aggressive duplicate delivery; every task may run twice but
	// results must be correct and the job must finish.
	env := Env{
		Blob:  blob.NewStore(blob.Config{}),
		Queue: queue.NewService(queue.Config{Seed: 5, DuplicateProb: 0.3}),
	}
	cfg := Config{JobName: "dup"}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	files := makeFiles(15)
	tasks, err := client.SubmitFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := StartInstance(env, cfg, upperExec, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	if _, err := client.WaitForCompletion(tasks, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	outputs, err := client.CollectOutputs(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range files {
		if !bytes.Equal(outputs[name], bytes.ToUpper(in)) {
			t.Errorf("%s corrupted under duplicate delivery", name)
		}
	}
}

// Monitor reports carry the reporting instance's type (the calibration
// catalog's label); reports from deployments that do not label
// themselves — including every report journaled before the field
// existed — must still parse with the type empty.
func TestMonitorReportCarriesInstanceType(t *testing.T) {
	env := testEnv()
	cfg := Config{JobName: "typed", InstanceType: "aws/Large"}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	tasks, err := client.SubmitFiles(map[string][]byte{"a.txt": []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := StartInstance(env, cfg, upperExec, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = tasks
	// Read the raw report off the monitor queue (WaitForCompletion would
	// consume it).
	var msgs []queue.Message
	deadline := time.Now().Add(5 * time.Second)
	for len(msgs) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no monitor report within 5s")
		}
		msgs, err = env.Queue.ReceiveMessageBatch(cfg.MonitorQueue(), time.Minute, 10, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
	}
	inst.Stop()
	rep, err := ParseMonitorReport(msgs[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InstanceType != "aws/Large" {
		t.Errorf("InstanceType = %q, want aws/Large", rep.InstanceType)
	}
	if rep.ServiceTime <= 0 {
		t.Errorf("ServiceTime = %v, want > 0", rep.ServiceTime)
	}

	// Old-format report: no instance_type key at all.
	old := []byte(`{"task_id":"t1","worker_id":3,"status":"done","service_ns":42}`)
	rep, err = ParseMonitorReport(old)
	if err != nil {
		t.Fatalf("old report failed to parse: %v", err)
	}
	if rep.InstanceType != "" {
		t.Errorf("old report InstanceType = %q, want empty", rep.InstanceType)
	}
	if rep.TaskID != "t1" || rep.ServiceTime != 42 {
		t.Errorf("old report fields = %+v", rep)
	}
}

func TestTaskValidate(t *testing.T) {
	good := Task{ID: "a", InputKey: "a", OutputKey: "a.out"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	bad := Task{}
	if err := bad.Validate(); err == nil {
		t.Error("empty task accepted")
	}
	evil := Task{ID: "a\nb", InputKey: "x", OutputKey: "y"}
	if err := evil.Validate(); err == nil {
		t.Error("newline id accepted")
	}
}

func TestStopIsIdempotentAndConcurrent(t *testing.T) {
	env := testEnv()
	cfg := Config{JobName: "stop"}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	inst, err := StartInstance(env, cfg, upperExec, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst.Stop()
		}()
	}
	wg.Wait()
}

func TestProgressTracking(t *testing.T) {
	env := testEnv()
	cfg := Config{JobName: "progress"}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	tasks, err := client.SubmitFiles(makeFiles(10))
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Progress()
	if err != nil {
		t.Fatal(err)
	}
	if p.TasksQueued != 10 || p.TasksInFlight != 0 || p.Reported != 0 {
		t.Errorf("before workers: %+v", p)
	}
	inst, err := StartInstance(env, cfg, upperExec, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	if _, err := client.WaitForCompletion(tasks, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	p, err = client.Progress()
	if err != nil {
		t.Fatal(err)
	}
	if p.TasksQueued != 0 || p.TasksInFlight != 0 {
		t.Errorf("after completion: %+v", p)
	}
	if _, err := NewClient(env, Config{JobName: "ghost"}).Progress(); err == nil {
		t.Error("progress of unknown job should error")
	}
}

func TestDeadLetterAfterReceiveCap(t *testing.T) {
	env := testEnv()
	poison := FuncExecutor{
		AppName: "poison",
		Fn: func(task Task, input []byte) ([]byte, error) {
			if task.ID == "file001.txt" {
				return nil, errors.New("permanently broken input")
			}
			return bytes.ToUpper(input), nil
		},
	}
	cfg := Config{
		JobName:           "dlq",
		VisibilityTimeout: 20 * time.Millisecond,
		MaxReceives:       3,
		DeadLetterQueue:   "dlq-dead",
	}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	tasks, err := client.SubmitFiles(makeFiles(5))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := StartInstance(env, cfg, poison, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	rep, err := client.WaitForCompletion(tasks, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 4 {
		t.Errorf("Completed = %d, want 4", rep.Completed)
	}
	if rep.DeadLettered != 1 {
		t.Errorf("DeadLettered = %d, want 1", rep.DeadLettered)
	}
	if got := inst.Stats().DeadLettered.Load(); got != 1 {
		t.Errorf("instance DeadLettered = %d, want 1", got)
	}
	// The poison message is parked, intact, on the dead-letter queue.
	visible, inflight, err := env.Queue.ApproximateCount("dlq-dead")
	if err != nil {
		t.Fatal(err)
	}
	if visible+inflight != 1 {
		t.Errorf("dead-letter queue holds %d messages, want 1", visible+inflight)
	}
	// Task queue must be fully drained: poison cannot wedge it.
	visible, inflight, err = env.Queue.ApproximateCount(cfg.TaskQueue())
	if err != nil {
		t.Fatal(err)
	}
	if visible+inflight != 0 {
		t.Errorf("task queue still holds %d messages", visible+inflight)
	}
}

func TestKillAbandonsInFlightWork(t *testing.T) {
	env := testEnv()
	cfg := Config{JobName: "kill", VisibilityTimeout: 30 * time.Millisecond}
	client := NewClient(env, cfg)
	if err := client.Setup(); err != nil {
		t.Fatal(err)
	}
	tasks, err := client.SubmitFiles(makeFiles(12))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := StartInstance(env, cfg, slowUpperExec, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Let the victim pick up work, then preempt it mid-stream.
	time.Sleep(5 * time.Millisecond)
	victim.Kill()
	// A survivor fleet recovers the abandoned tasks via the visibility
	// timeout.
	survivor, err := StartInstance(env, cfg, slowUpperExec, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Stop()
	rep, err := client.WaitForCompletion(tasks, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(tasks) {
		t.Errorf("Completed = %d, want %d", rep.Completed, len(tasks))
	}
	if victim.Stats().TasksAbandoned.Load() == 0 {
		t.Error("victim abandoned no tasks; Kill was a graceful stop")
	}
}
