package catalog

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/cloud"
)

func openTest(t *testing.T, store *blob.Store, snapEvery int) *Service {
	t.Helper()
	s, err := Open(Config{
		Store:         store,
		SnapshotEvery: snapEvery,
		Prices:        append(cloud.EC2Catalog(), cloud.AzureCatalog()...),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRecordAndStats(t *testing.T) {
	s := openTest(t, blob.NewStore(blob.Config{}), 0)
	samples := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond,
	}
	if err := s.Record("cap3", "aws/Large", samples); err != nil {
		t.Fatal(err)
	}
	st, ok := s.Stats("cap3", "aws/Large")
	if !ok {
		t.Fatal("no stats for recorded key")
	}
	if st.Count != 3 {
		t.Errorf("Count = %d, want 3", st.Count)
	}
	if got, want := st.Mean(), 200*time.Millisecond; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if st.P50NS <= 0 || st.P95NS < st.P50NS {
		t.Errorf("percentiles p50=%d p95=%d", st.P50NS, st.P95NS)
	}
	if st.CostPerHour != cloud.EC2Large.CostPerHour {
		t.Errorf("CostPerHour = %v, want the joined price %v", st.CostPerHour, cloud.EC2Large.CostPerHour)
	}
	if st.TasksPerUSD <= 0 {
		t.Error("TasksPerUSD not derived")
	}
	if _, ok := s.Stats("cap3", "aws/never-seen"); ok {
		t.Error("stats for an unobserved key")
	}
	// Non-positive samples are dropped, not recorded.
	if err := s.Record("cap3", "aws/Large", []time.Duration{0, -time.Second}); err != nil {
		t.Fatal(err)
	}
	st, _ = s.Stats("cap3", "aws/Large")
	if st.Count != 3 {
		t.Errorf("Count = %d after non-positive batch, want 3", st.Count)
	}
}

func TestObservedMeansAppliesSampleFloor(t *testing.T) {
	s := openTest(t, blob.NewStore(blob.Config{}), 0)
	many := make([]time.Duration, 20)
	for i := range many {
		many[i] = time.Second
	}
	_ = s.Record("cap3", "aws/Large", many)
	_ = s.Record("cap3", "azure/Small", []time.Duration{time.Second})
	means := s.ObservedMeans("cap3", 16)
	if len(means) != 1 {
		t.Fatalf("ObservedMeans = %v, want only the 20-sample key", means)
	}
	if means["aws/Large"] != time.Second {
		t.Errorf("mean = %v, want 1s", means["aws/Large"])
	}
}

func TestCatalogRecoversFromJournal(t *testing.T) {
	store := blob.NewStore(blob.Config{})
	s := openTest(t, store, 0)
	for i := 0; i < 5; i++ {
		if err := s.Record("blast", "azure/Small", []time.Duration{time.Duration(i+1) * time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh service over the same store must replay the samples.
	re := openTest(t, store, 0)
	st, ok := re.Stats("blast", "azure/Small")
	if !ok {
		t.Fatal("recovered catalog lost the key")
	}
	if st.Count != 5 {
		t.Errorf("recovered Count = %d, want 5", st.Count)
	}
	if got, want := st.Mean(), 3*time.Second; got != want {
		t.Errorf("recovered Mean = %v, want %v", got, want)
	}
}

func TestCatalogCompactionPreservesSummaries(t *testing.T) {
	store := blob.NewStore(blob.Config{})
	s := openTest(t, store, 4) // snapshot every 4 batches
	for i := 0; i < 11; i++ {
		if err := s.Record("gtm", "aws/Large", []time.Duration{time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	re := openTest(t, store, 4)
	st, ok := re.Stats("gtm", "aws/Large")
	if !ok || st.Count != 11 {
		t.Fatalf("after compaction: Count = %d (ok=%v), want 11", st.Count, ok)
	}
	if got, want := st.Mean(), time.Second; got != want {
		t.Errorf("after compaction: Mean = %v, want %v", got, want)
	}
}

func TestReportOrdersByPricePerformance(t *testing.T) {
	s := openTest(t, blob.NewStore(blob.Config{}), 0)
	// Same observed speed; Azure Small is 0.12/h vs EC2 Large 0.34/h, so
	// the Azure row must sort first on tasks-per-dollar.
	_ = s.Record("cap3", "aws/Large", []time.Duration{time.Second})
	_ = s.Record("cap3", "azure/Small", []time.Duration{time.Second})
	rep, ok := s.ReportFor("cap3")
	if !ok || len(rep.Rows) != 2 {
		t.Fatalf("ReportFor = %+v ok=%v", rep, ok)
	}
	if rep.Rows[0].InstanceType != "azure/Small" {
		t.Errorf("best row = %s, want azure/Small", rep.Rows[0].InstanceType)
	}
	all := s.Report()
	if len(all) != 1 || all[0].App != "cap3" {
		t.Errorf("Report() = %+v", all)
	}
}

func TestHTTPHandler(t *testing.T) {
	s := openTest(t, blob.NewStore(blob.Config{}), 0)
	_ = s.Record("cap3", "aws/Large", []time.Duration{time.Second})
	h := &Handler{Service: s}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/catalog", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /catalog = %d", rr.Code)
	}
	var reports []AppReport
	if err := json.Unmarshal(rr.Body.Bytes(), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].App != "cap3" {
		t.Errorf("body = %s", rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/catalog/cap3", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /catalog/cap3 = %d", rr.Code)
	}
	var rep AppReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].InstanceType != "aws/Large" {
		t.Errorf("body = %s", rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/catalog/unknown", nil))
	if rr.Code != 404 {
		t.Errorf("GET /catalog/unknown = %d, want 404", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/catalog", nil))
	if rr.Code != 405 {
		t.Errorf("POST /catalog = %d, want 405", rr.Code)
	}
}
