package catalog

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler exposes the catalog read-only over HTTP (brokerd's -catalog
// listener):
//
//	GET /catalog         every app's side-by-side comparison
//	GET /catalog/{app}   one app's comparison (404 when unobserved)
//
// Rows are sorted best observed price-performance first; the JSON is
// the side-by-side export ([]AppReport / AppReport).
type Handler struct {
	Service *Service
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	path := strings.TrimSuffix(r.URL.Path, "/")
	switch {
	case path == "/catalog" || path == "":
		writeJSON(w, h.Service.Report())
	default:
		app, ok := strings.CutPrefix(path, "/catalog/")
		if !ok || app == "" || strings.Contains(app, "/") {
			http.NotFound(w, r)
			return
		}
		rep, ok := h.Service.ReportFor(app)
		if !ok {
			http.Error(w, "catalog: no observations for app "+app, http.StatusNotFound)
			return
		}
		writeJSON(w, rep)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
