// Package catalog is the calibration catalog: a durable record of
// observed per-task service times keyed by (app, instance type), built
// from the worker-measured service_ns samples the broker's settlement
// path drains. It is the AccelBench-style "benchmark catalog as a
// product" of the roadmap — pre-computed price-performance per instance
// type, continuously refreshed from live jobs, exported side by side —
// and the data source the broker's mid-job re-planner and perfmodel's
// CalibratedModel overlay consume.
//
// Durability follows the repo's journal discipline: every recorded
// sample batch is appended write-ahead to a journal object in the blob
// store before it is folded into the in-memory summaries, and the
// summaries (count, sum, power-of-two latency buckets — enough to
// reproduce mean/p50/p95 exactly) are periodically compacted into the
// journal's snapshot so replay stays bounded. Open() recovers the full
// catalog from snapshot + tail.
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/blob"
	"repro/internal/cloud"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// Config tunes the catalog service. Zero values select defaults.
type Config struct {
	// Store is the blob store holding the catalog journal (required).
	Store *blob.Store
	// Bucket and Key name the journal object (defaults
	// "calibration" / "observations").
	Bucket string
	Key    string
	// SnapshotEvery bounds replay: after this many journaled batches the
	// summaries are snapshotted and the journal truncated (default 256;
	// negative disables compaction).
	SnapshotEvery int
	// Prices joins hourly rates into the side-by-side export; entries
	// are matched by cloud.InstanceType.Key(). Empty leaves the
	// price-performance columns zero.
	Prices []cloud.InstanceType
}

func (c Config) withDefaults() Config {
	if c.Bucket == "" {
		c.Bucket = "calibration"
	}
	if c.Key == "" {
		c.Key = "observations"
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 256
	}
	return c
}

// Service is the calibration catalog.
type Service struct {
	cfg Config
	log journal.Log

	mu      sync.Mutex
	entries map[string]*entry // key: app + "|" + instance type
	appends int
}

// entry accumulates one (app, instance type) key's samples. The
// histogram carries count, sum, and the bucket counts that reproduce
// the percentiles; it is also the unit of snapshot persistence.
type entry struct {
	app  string
	it   string
	hist *telemetry.Histogram
}

// batchRecord is one journaled ingestion batch.
type batchRecord struct {
	App string  `json:"app"`
	IT  string  `json:"it"`
	NS  []int64 `json:"ns"`
}

// snapEntry is one entry's persisted summary state.
type snapEntry struct {
	App     string  `json:"app"`
	IT      string  `json:"it"`
	SumNS   int64   `json:"sum_ns"`
	Buckets []int64 `json:"buckets"`
}

// snapState is the journal snapshot document.
type snapState struct {
	Entries []snapEntry `json:"entries"`
}

// Open creates (idempotently) the catalog bucket and recovers the
// catalog from its journal: snapshot first, then a fold of the tail.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, errors.New("catalog: Config.Store is required")
	}
	if err := cfg.Store.CreateBucket(cfg.Bucket); err != nil && !errors.Is(err, blob.ErrBucketExists) {
		return nil, fmt.Errorf("catalog: creating bucket: %w", err)
	}
	s := &Service{
		cfg:     cfg,
		log:     journal.Log{Store: cfg.Store, Bucket: cfg.Bucket, Key: cfg.Key},
		entries: make(map[string]*entry),
	}
	v, err := s.log.Load()
	if err != nil {
		if errors.Is(err, blob.ErrNoSuchKey) {
			return s, nil // fresh catalog, nothing recorded yet
		}
		return nil, fmt.Errorf("catalog: loading journal: %w", err)
	}
	if v.Snapshot != nil {
		var st snapState
		if err := json.Unmarshal(v.Snapshot, &st); err != nil {
			return nil, fmt.Errorf("catalog: decoding snapshot: %w", err)
		}
		for _, se := range st.Entries {
			s.get(se.App, se.IT).hist.Merge(se.SumNS, se.Buckets)
		}
	}
	for i, line := range v.Entries {
		var rec batchRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("catalog: journal record %d: %w", i+1, err)
		}
		s.fold(rec)
	}
	return s, nil
}

func entryKey(app, it string) string { return app + "|" + it }

// get returns (creating if needed) the entry for a key. Caller holds
// s.mu (or is the still-single-threaded Open).
func (s *Service) get(app, it string) *entry {
	k := entryKey(app, it)
	e := s.entries[k]
	if e == nil {
		e = &entry{app: app, it: it, hist: telemetry.NewHistogram()}
		s.entries[k] = e
	}
	return e
}

func (s *Service) fold(rec batchRecord) {
	e := s.get(rec.App, rec.IT)
	for _, ns := range rec.NS {
		e.hist.Observe(time.Duration(ns))
	}
}

// Record ingests one batch of observed per-task service times for an
// (app, instance type) key. The batch is journaled write-ahead: a batch
// whose append fails is not folded and the error surfaces to the caller
// (the broker ingests best-effort and simply drops the batch — the
// catalog is advisory, losing samples only delays calibration).
func (s *Service) Record(app, instanceType string, samples []time.Duration) error {
	if app == "" || instanceType == "" || len(samples) == 0 {
		return nil
	}
	rec := batchRecord{App: app, IT: instanceType, NS: make([]int64, 0, len(samples))}
	for _, d := range samples {
		if d > 0 {
			rec.NS = append(rec.NS, int64(d))
		}
	}
	if len(rec.NS) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.log.AppendJSON(rec); err != nil {
		return err
	}
	s.fold(rec)
	s.maybeCompactLocked()
	return nil
}

// maybeCompactLocked snapshots the summaries and truncates the journal
// once SnapshotEvery batches have accumulated. Best-effort, like the
// broker's job-journal compaction: a failure leaves the journal longer
// but complete, and the counter stays up so the next batch retries.
func (s *Service) maybeCompactLocked() {
	if s.cfg.SnapshotEvery <= 0 {
		return
	}
	s.appends++
	if s.appends < s.cfg.SnapshotEvery {
		return
	}
	st := snapState{Entries: make([]snapEntry, 0, len(s.entries))}
	for _, e := range s.entries {
		st.Entries = append(st.Entries, snapEntry{
			App: e.app, IT: e.it,
			SumNS:   int64(e.hist.Sum()),
			Buckets: e.hist.BucketCounts(),
		})
	}
	sort.Slice(st.Entries, func(a, b int) bool {
		if st.Entries[a].App != st.Entries[b].App {
			return st.Entries[a].App < st.Entries[b].App
		}
		return st.Entries[a].IT < st.Entries[b].IT
	})
	state, err := json.Marshal(st)
	if err != nil {
		return
	}
	if err := s.log.Snapshot(state); err != nil {
		return
	}
	s.appends = 0
}

// Stats is one (app, instance type) key's observed summary, with
// price-performance columns joined from the configured price catalog.
type Stats struct {
	App          string `json:"app"`
	InstanceType string `json:"instance_type"`
	Count        int64  `json:"count"`
	MeanNS       int64  `json:"mean_ns"`
	P50NS        int64  `json:"p50_ns"`
	P95NS        int64  `json:"p95_ns"`
	// CostPerHour is the instance type's hourly price (zero when the
	// type is not in the configured price catalog).
	CostPerHour float64 `json:"cost_per_hour,omitempty"`
	// TasksPerHour is one worker lane's observed throughput
	// (3600 / mean); TasksPerUSD divides it by the hourly price. Both
	// are per-lane figures — the ordering, which is what a side-by-side
	// comparison needs, is unaffected by the lane count.
	TasksPerHour float64 `json:"tasks_per_hour,omitempty"`
	TasksPerUSD  float64 `json:"tasks_per_usd,omitempty"`
}

// Mean returns the observed mean service time.
func (st Stats) Mean() time.Duration { return time.Duration(st.MeanNS) }

func (s *Service) statsLocked(e *entry) Stats {
	snap := e.hist.Snapshot()
	st := Stats{
		App:          e.app,
		InstanceType: e.it,
		Count:        snap.Count,
		P50NS:        snap.P50NS,
		P95NS:        snap.P95NS,
	}
	if snap.Count > 0 {
		st.MeanNS = snap.SumNS / snap.Count
	}
	for _, it := range s.cfg.Prices {
		if it.Key() == e.it {
			st.CostPerHour = it.CostPerHour
			break
		}
	}
	if st.MeanNS > 0 {
		st.TasksPerHour = float64(time.Hour) / float64(st.MeanNS)
		if st.CostPerHour > 0 {
			st.TasksPerUSD = st.TasksPerHour / st.CostPerHour
		}
	}
	return st
}

// Stats returns the summary for one (app, instance type) key.
func (s *Service) Stats(app, instanceType string) (Stats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[entryKey(app, instanceType)]
	if !ok {
		return Stats{}, false
	}
	return s.statsLocked(e), true
}

// ObservedMeans returns the observed mean service time per instance
// type for one app, restricted to keys with at least minSamples
// samples — the map perfmodel.Calibrate consumes.
func (s *Service) ObservedMeans(app string, minSamples int) map[string]time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]time.Duration)
	for _, e := range s.entries {
		if e.app != app {
			continue
		}
		st := s.statsLocked(e)
		if st.Count >= int64(minSamples) && st.MeanNS > 0 {
			out[e.it] = st.Mean()
		}
	}
	return out
}

// AppReport is one app's side-by-side instance-type comparison, best
// price-performance first.
type AppReport struct {
	App  string  `json:"app"`
	Rows []Stats `json:"rows"`
}

// Report exports every app's comparison, apps sorted by name.
func (s *Service) Report() []AppReport {
	s.mu.Lock()
	byApp := make(map[string][]Stats)
	for _, e := range s.entries {
		byApp[e.app] = append(byApp[e.app], s.statsLocked(e))
	}
	s.mu.Unlock()
	apps := make([]string, 0, len(byApp))
	for app := range byApp {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	out := make([]AppReport, 0, len(apps))
	for _, app := range apps {
		out = append(out, AppReport{App: app, Rows: sortRows(byApp[app])})
	}
	return out
}

// ReportFor exports one app's comparison.
func (s *Service) ReportFor(app string) (AppReport, bool) {
	s.mu.Lock()
	var rows []Stats
	for _, e := range s.entries {
		if e.app == app {
			rows = append(rows, s.statsLocked(e))
		}
	}
	s.mu.Unlock()
	if len(rows) == 0 {
		return AppReport{}, false
	}
	return AppReport{App: app, Rows: sortRows(rows)}, true
}

// sortRows orders a comparison: best observed price-performance first,
// unpriced rows after (by throughput), name as the final tiebreak.
func sortRows(rows []Stats) []Stats {
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].TasksPerUSD != rows[b].TasksPerUSD {
			return rows[a].TasksPerUSD > rows[b].TasksPerUSD
		}
		if rows[a].TasksPerHour != rows[b].TasksPerHour {
			return rows[a].TasksPerHour > rows[b].TasksPerHour
		}
		return rows[a].InstanceType < rows[b].InstanceType
	})
	return rows
}
