package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randomSPD builds a well-conditioned symmetric positive-definite matrix.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	a := randomMatrix(rng, n, n)
	spd := Mul(a, a.Transpose())
	spd.AddDiagonal(float64(n)) // guarantee positive definiteness
	return spd
}

func TestMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) > 1e-12 {
		t.Errorf("Mul = %v, want %v", c.Data, want.Data)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 7, 7)
	if MaxAbsDiff(Mul(a, Identity(7)), a) > 1e-12 {
		t.Error("a × I != a")
	}
	if MaxAbsDiff(Mul(Identity(7), a), a) > 1e-12 {
		t.Error("I × a != a")
	}
}

func TestMulNonSquare(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 2}, {0, 3, -1}})
	b := FromRows([][]float64{{3, 1}, {2, 1}, {1, 0}})
	c := Mul(a, b)
	want := FromRows([][]float64{{5, 1}, {5, 3}})
	if MaxAbsDiff(c, want) > 1e-12 {
		t.Errorf("Mul = %v, want %v", c.Data, want.Data)
	}
}

func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range []struct{ m, n, p int }{
		{1, 1, 1}, {2, 3, 4}, {50, 70, 30}, {128, 96, 200}, {300, 64, 150},
	} {
		a := randomMatrix(rng, shape.m, shape.n)
		b := randomMatrix(rng, shape.n, shape.p)
		serial := Mul(a, b)
		parallel := MulParallel(a, b)
		if d := MaxAbsDiff(serial, parallel); d > 1e-9 {
			t.Errorf("shape %v: parallel differs from serial by %g", shape, d)
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mul with mismatched shapes should panic")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape = %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Errorf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestTransposeProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, p := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, n, p)
		left := Mul(a, b).Transpose()
		right := Mul(b.Transpose(), a.Transpose())
		return MaxAbsDiff(left, right) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 5, 20, 64} {
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := MaxAbsDiff(Mul(l, l.Transpose()), a); d > 1e-8*float64(n) {
			t.Errorf("n=%d: ‖LLᵀ−A‖∞ = %g", n, d)
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Errorf("n=%d: upper part nonzero at %d,%d", n, i, j)
				}
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Errorf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 3, 10, 40} {
		a := randomSPD(rng, n)
		want := randomMatrix(rng, n, 3)
		b := Mul(a, want)
		got, err := SolveSPD(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := MaxAbsDiff(got, want); d > 1e-6 {
			t.Errorf("n=%d: solution error %g", n, d)
		}
	}
}

// Property: SolveSPD(A, A·x) recovers x for random SPD A.
func TestSolveSPDQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randomSPD(rng, n)
		x := randomMatrix(rng, n, 1)
		b := Mul(a, x)
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		return MaxAbsDiff(got, x) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := MulVec(a, []float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if !approxEqual(got[i], want[i], 1e-12) {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	sum := a.Clone().Add(b)
	want := FromRows([][]float64{{5, 5}, {5, 5}})
	if MaxAbsDiff(sum, want) > 0 {
		t.Errorf("Add = %v", sum.Data)
	}
	diff := sum.Clone().Sub(b)
	if MaxAbsDiff(diff, a) > 0 {
		t.Errorf("Sub = %v", diff.Data)
	}
	sc := a.Clone().Scale(2)
	if sc.At(1, 1) != 8 {
		t.Errorf("Scale: got %v", sc.At(1, 1))
	}
}

func TestAddDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.AddDiagonal(2.5)
	for i := 0; i < 3; i++ {
		if a.At(i, i) != 2.5 {
			t.Errorf("diag[%d] = %v", i, a.At(i, i))
		}
	}
}

func TestDotAndSquaredDistance(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v, want 32", Dot(a, b))
	}
	if SquaredDistance(a, b) != 27 {
		t.Errorf("SquaredDistance = %v, want 27", SquaredDistance(a, b))
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]float64{{3, 4}})
	if !approxEqual(FrobeniusNorm(a), 5, 1e-12) {
		t.Errorf("norm = %v, want 5", FrobeniusNorm(a))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func BenchmarkMulParallel256(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randomMatrix(rng, 256, 256)
	y := randomMatrix(rng, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulParallel(x, y)
	}
}

func TestConstructorErrorPaths(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMatrix(0, 3) },
		func() { NewMatrix(3, -1) },
		func() { FromRows(nil) },
		func() { FromRows([][]float64{{}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid construction")
				}
			}()
			fn()
		}()
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(3, 3)
	for _, fn := range []func(){
		func() { a.Add(b) },
		func() { a.Sub(b) },
		func() { NewMatrix(2, 3).AddDiagonal(1) },
		func() { MulParallel(a, NewMatrix(3, 2)) },
		func() { MulVec(a, []float64{1, 2, 3}) },
		func() { MaxAbsDiff(a, b) },
		func() { Dot([]float64{1}, []float64{1, 2}) },
		func() { SquaredDistance([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for shape mismatch")
				}
			}()
			fn()
		}()
	}
}

func TestSolveSPDErrorPaths(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square Cholesky accepted")
	}
	if _, err := SolveSPD(NewMatrix(2, 2), NewMatrix(3, 1)); err == nil {
		t.Error("mismatched SolveSPD accepted")
	}
	notPD := FromRows([][]float64{{0, 1}, {1, 0}})
	if _, err := SolveSPD(notPD, NewMatrix(2, 1)); err == nil {
		t.Error("non-PD SolveSPD accepted")
	}
}

func TestSetAndAt(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Error("Set/At mismatch")
	}
}
