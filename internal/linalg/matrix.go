// Package linalg implements the dense linear algebra needed by the GTM
// trainer and interpolator: row-major matrices, cache-blocked and
// goroutine-parallel multiplication, Cholesky factorization, and
// symmetric positive-definite solves.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape. It panics on
// non-positive dimensions, which indicate a caller bug.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d vs %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Add accumulates other into m in place. Shapes must match.
func (m *Matrix) Add(other *Matrix) *Matrix {
	mustSameShape(m, other)
	for i, v := range other.Data {
		m.Data[i] += v
	}
	return m
}

// Sub subtracts other from m in place. Shapes must match.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	mustSameShape(m, other)
	for i, v := range other.Data {
		m.Data[i] -= v
	}
	return m
}

// AddDiagonal adds v to every diagonal element of a square matrix.
func (m *Matrix) AddDiagonal(v float64) *Matrix {
	if m.Rows != m.Cols {
		panic("linalg: AddDiagonal on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += v
	}
	return m
}

func mustSameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// blockSize is the tile edge used by the cache-blocked multiply.
const blockSize = 64

// Mul returns a×b using a cache-blocked single-threaded kernel.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	mulRange(a, b, out, 0, a.Rows)
	return out
}

// MulParallel returns a×b, splitting row bands across GOMAXPROCS workers.
// Falls back to the serial kernel for small outputs where goroutine
// overhead dominates.
func MulParallel(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MulParallel shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 || a.Rows*b.Cols < 64*64 {
		mulRange(a, b, out, 0, a.Rows)
		return out
	}
	var wg sync.WaitGroup
	band := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := lo + band
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// mulRange computes out[lo:hi] = a[lo:hi] × b with ikj loop order and
// tiling over the k dimension.
func mulRange(a, b, out *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for k0 := 0; k0 < n; k0 += blockSize {
		k1 := k0 + blockSize
		if k1 > n {
			k1 = n
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k := k0; k < k1; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.Data[k*p : (k+1)*p]
				for j, bv := range brow {
					orow[j] += aik * bv
				}
			}
		}
	}
}

// MulVec returns a×x for a column vector x (len == a.Cols).
func MulVec(a *Matrix, x []float64) []float64 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d × %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// ErrNotPositiveDefinite reports a failed Cholesky factorization.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// Cholesky computes the lower-triangular L with L·Lᵀ = a for a symmetric
// positive-definite matrix.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky on non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			li, lj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return l, nil
}

// SolveSPD solves a·X = b for symmetric positive-definite a via Cholesky.
// b may have multiple right-hand-side columns.
func SolveSPD(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("linalg: SolveSPD shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n, m := a.Rows, b.Cols
	x := b.Clone()
	// Forward substitution: L·Y = B.
	for i := 0; i < n; i++ {
		li := l.Row(i)
		xi := x.Row(i)
		for k := 0; k < i; k++ {
			lik := li[k]
			if lik == 0 {
				continue
			}
			xk := x.Row(k)
			for c := 0; c < m; c++ {
				xi[c] -= lik * xk[c]
			}
		}
		inv := 1 / li[i]
		for c := 0; c < m; c++ {
			xi[c] *= inv
		}
	}
	// Backward substitution: Lᵀ·X = Y.
	for i := n - 1; i >= 0; i-- {
		xi := x.Row(i)
		for k := i + 1; k < n; k++ {
			lki := l.At(k, i)
			if lki == 0 {
				continue
			}
			xk := x.Row(k)
			for c := 0; c < m; c++ {
				xi[c] -= lki * xk[c]
			}
		}
		inv := 1 / l.At(i, i)
		for c := 0; c < m; c++ {
			xi[c] *= inv
		}
	}
	return x, nil
}

// FrobeniusNorm returns the Frobenius norm of m.
func FrobeniusNorm(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	mustSameShape(a, b)
	var max float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SquaredDistance returns ‖a−b‖².
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SquaredDistance length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
