// Kill-and-restart integration test for the event-sourced broker
// control plane: ≥100 CAP3 tasks are driven through brokerd's HTTP API,
// the broker is hard-stopped mid-job (no Close — its journal looks like
// a kill -9's), and a fresh broker over the SAME blob store and queues
// replays the journal, re-adopts the job without re-submitting anything,
// and finishes it. Task accounting must be exact — every task completes
// exactly once, none lost, none double-counted — and the journaled
// billing ledger must land within one hour-unit of an uninterrupted
// run's.
package repro

import (
	"fmt"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/broker"
	"repro/internal/classiccloud"
	"repro/internal/queue"
	"repro/internal/workload"
)

// recoveryTestConfig pins the fleet to one instance so the hour-unit
// ledgers of the crashed and uninterrupted runs are directly
// comparable: sub-hour lifetimes bill one unit per launch, and the only
// extra launch a crash can add is the recovery relaunch.
func recoveryTestConfig(env classiccloud.Env) broker.Config {
	return broker.Config{
		Env:                env,
		WorkersPerInstance: 2,
		VisibilityTimeout:  600 * time.Millisecond,
		MaxReceives:        8,
		TickInterval:       5 * time.Millisecond,
		Autoscale: broker.AutoscalePolicy{
			MinInstances: 1, MaxInstances: 1,
		},
	}
}

func recoveryWorkload(t *testing.T) map[string][]byte {
	t.Helper()
	const total = 110
	files := make(map[string][]byte, total)
	for i := 0; i < total; i++ {
		doc, err := workload.Cap3File(int64(i+1), 40, 1200)
		if err != nil {
			t.Fatal(err)
		}
		files[fmt.Sprintf("region%03d.fsa", i)] = doc
	}
	return files
}

func TestBrokerCrashRecoveryEndToEnd(t *testing.T) {
	files := recoveryWorkload(t)
	total := len(files)

	// --- Crashed run: submit over HTTP, hard-stop mid-job, recover. ---
	env := classiccloud.Env{
		Blob:  blob.NewStore(blob.Config{}),
		Queue: queue.NewService(queue.Config{Seed: 99}),
	}
	b1 := broker.New(recoveryTestConfig(env))
	srv1 := httptest.NewServer(&broker.HTTPHandler{Broker: b1})
	client1 := &broker.HTTPClient{BaseURL: srv1.URL}

	st, err := client1.Submit(broker.JobRequest{App: "cap3", Tenant: "alice", Files: files})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != total {
		t.Fatalf("submitted %d tasks, want %d", st.Total, total)
	}

	// Let the job make real progress, then pull the plug: Halt kills the
	// fleet mid-task and stops every loop without journaling anything.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := client1.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Done >= 25 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck before crash: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	b1.Halt()
	srv1.Close()
	mid, _ := b1.Job(st.ID)
	preDone := mid.Status().Done
	if preDone >= total {
		t.Fatalf("job finished before the crash (done=%d); nothing to recover", preDone)
	}

	// A fresh broker over the SAME environment: the journal bucket, task
	// queue, monitor queue, and output bucket are all still there.
	b2 := broker.New(recoveryTestConfig(env))
	defer b2.Close()
	n, err := b2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if n != 1 {
		t.Fatalf("recovered %d running jobs, want 1", n)
	}
	srv2 := httptest.NewServer(&broker.HTTPHandler{Broker: b2})
	defer srv2.Close()
	client2 := &broker.HTTPClient{BaseURL: srv2.URL}

	final, err := client2.WaitForCompletion(st.ID, 120*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("recovered job did not complete: %v (status %+v)", err, final)
	}

	// Exact task accounting: every task done exactly once, none lost to
	// the crash, none dead-lettered, none double-counted (the done-set
	// fold is idempotent even when the crash redelivers reports).
	if final.Done != total {
		t.Errorf("done = %d, want %d (task lost or double-counted)", final.Done, total)
	}
	if final.Dead != 0 {
		t.Errorf("dead = %d, want 0", final.Dead)
	}
	if final.Adoptions != 1 {
		t.Errorf("adoptions = %d, want 1", final.Adoptions)
	}
	outs, err := client2.Outputs(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != total {
		t.Errorf("collected %d outputs, want %d", len(outs), total)
	}

	crashedCost, err := client2.Cost(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if crashedCost.Orphaned < 1 {
		t.Errorf("orphaned = %d, want ≥ 1 (the crash stranded an instance)", crashedCost.Orphaned)
	}

	// --- Uninterrupted reference run: same workload, same config. ---
	refEnv := classiccloud.Env{
		Blob:  blob.NewStore(blob.Config{}),
		Queue: queue.NewService(queue.Config{Seed: 99}),
	}
	b3 := broker.New(recoveryTestConfig(refEnv))
	defer b3.Close()
	srv3 := httptest.NewServer(&broker.HTTPHandler{Broker: b3})
	defer srv3.Close()
	client3 := &broker.HTTPClient{BaseURL: srv3.URL}
	stRef, err := client3.Submit(broker.JobRequest{App: "cap3", Tenant: "alice", Files: files})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client3.WaitForCompletion(stRef.ID, 120*time.Second, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	refCost, err := client3.Cost(stRef.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The journaled ledger carries the crashed instance's hour unit and
	// the recovery relaunch's: within one hour-unit of the clean run.
	if diff := math.Abs(crashedCost.HourUnits - refCost.HourUnits); diff > 1 {
		t.Errorf("hour units: crashed run %v vs uninterrupted %v (diff %v > 1)",
			crashedCost.HourUnits, refCost.HourUnits, diff)
	}

	// The per-tenant attribution survives the restart too.
	tenants, err := client2.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 1 || tenants[0].Tenant != "alice" || tenants[0].Done != total {
		t.Errorf("tenant attribution after recovery = %+v", tenants)
	}
}
